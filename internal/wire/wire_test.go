package wire

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
	"testing/quick"

	"fedclust/internal/rng"
)

func randVec(r *rng.Rng, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestFloat64RoundTripExact(t *testing.T) {
	v := []float64{0, 1, -1, math.Pi, 1e-300, -1e300}
	got, err := Decode(Encode(Float64, v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("float64 round trip lossy at %d: %v != %v", i, got[i], v[i])
		}
	}
}

func TestFloat32RoundTripWithinTolerance(t *testing.T) {
	r := rng.New(1)
	v := randVec(r, 1000)
	got, err := Decode(Encode(Float32, v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if math.Abs(got[i]-v[i]) > 1e-6*(1+math.Abs(v[i])) {
			t.Fatalf("float32 error too large at %d: %v vs %v", i, got[i], v[i])
		}
	}
}

func TestQuant8ErrorBound(t *testing.T) {
	r := rng.New(2)
	v := randVec(r, 1000)
	lo, hi := rangeOf(v)
	bound := (hi - lo) / 255 / 2 * 1.0001
	if e := MaxError(Quant8, v); e > bound {
		t.Fatalf("quant8 error %v exceeds half-step bound %v", e, bound)
	}
}

func TestQuant8ConstantVector(t *testing.T) {
	v := []float64{3.5, 3.5, 3.5}
	got, err := Decode(Encode(Quant8, v))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range got {
		if x != 3.5 {
			t.Fatalf("constant vector decoded to %v", got)
		}
	}
}

func TestEncodedSizeMatchesActual(t *testing.T) {
	r := rng.New(3)
	for _, c := range []Codec{Float64, Float32, Quant8} {
		for _, n := range []int{0, 1, 7, 100} {
			frame := Encode(c, randVec(r, n))
			if len(frame) != EncodedSize(c, n) {
				t.Fatalf("%s n=%d: frame %d bytes, EncodedSize %d", c, n, len(frame), EncodedSize(c, n))
			}
		}
	}
}

func TestCompressionRatios(t *testing.T) {
	n := 10000
	f64 := EncodedSize(Float64, n)
	f32 := EncodedSize(Float32, n)
	q8 := EncodedSize(Quant8, n)
	if !(q8 < f32 && f32 < f64) {
		t.Fatalf("size ordering violated: q8=%d f32=%d f64=%d", q8, f32, f64)
	}
	if ratio := float64(f64) / float64(q8); ratio < 7.5 {
		t.Fatalf("quant8 ratio %v, want ~8x", ratio)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := rng.New(4)
	frame := Encode(Float32, randVec(r, 50))
	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), frame...)
	bad[headerLen+3] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("corrupted payload not rejected")
	}
	// Truncation.
	if _, err := Decode(frame[:len(frame)-5]); err == nil {
		t.Fatal("truncated frame not rejected")
	}
	// Bad magic.
	bad2 := append([]byte(nil), frame...)
	bad2[0] = 0
	if _, err := Decode(bad2); err == nil {
		t.Fatal("bad magic not rejected")
	}
	// Empty.
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty frame not rejected")
	}
	// Unknown codec (re-checksummed so only the codec check can fail).
	bad3 := append([]byte(nil), frame...)
	bad3[2] = 99
	bad3 = reChecksum(bad3)
	if _, err := Decode(bad3); err == nil {
		t.Fatal("unknown codec not rejected")
	}
}

func reChecksum(frame []byte) []byte {
	body := append([]byte(nil), frame[:len(frame)-4]...)
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, codecRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw) % 200
		c := Codec(codecRaw % 3)
		v := randVec(r, n)
		dec, err := Decode(Encode(c, v))
		if err != nil || len(dec) != n {
			return false
		}
		lo, hi := rangeOf(v)
		var tol float64
		switch c {
		case Float64:
			tol = 0
		case Float32:
			tol = 1e-5 * (1 + math.Max(math.Abs(lo), math.Abs(hi)))
		case Quant8:
			tol = (hi-lo)/255 + 1e-12
		}
		for i := range v {
			if math.Abs(dec[i]-v[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripWithinMaxError: for every codec, Decode(Encode(c, v))
// reconstructs each value within MaxError(c, v) — the bound the
// compression ablation reports is the bound the codecs actually keep.
func TestRoundTripWithinMaxError(t *testing.T) {
	f := func(seed uint64, nRaw uint8, codecRaw uint8) bool {
		r := rng.New(seed)
		n := 1 + int(nRaw)%200
		c := Codec(codecRaw % 3)
		v := randVec(r, n)
		bound := MaxError(c, v)
		dec, err := Decode(Encode(c, v))
		if err != nil || len(dec) != n {
			return false
		}
		for i := range v {
			if math.Abs(dec[i]-v[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Edge vectors the normal draws miss: constants, extremes, denormals.
	for _, v := range [][]float64{
		{0}, {42.5, 42.5, 42.5}, {-1e300, 1e300}, {5e-324, -5e-324, 0}, {1e-12, 1, 1e12},
	} {
		for _, c := range []Codec{Float64, Float32, Quant8} {
			bound := MaxError(c, v)
			dec, err := Decode(Encode(c, v))
			if err != nil {
				t.Fatalf("%s %v: %v", c, v, err)
			}
			for i := range v {
				if math.Abs(dec[i]-v[i]) > bound {
					t.Fatalf("%s: |%v - %v| exceeds MaxError %v", c, dec[i], v[i], bound)
				}
			}
		}
	}
}

// TestEncodeIntoMidBuffer: a frame appended after other bytes must decode
// identically to a standalone Encode — transports append frames directly
// after their message headers.
func TestEncodeIntoMidBuffer(t *testing.T) {
	v := randVec(rng.New(5), 64)
	for _, c := range []Codec{Float64, Float32, Quant8} {
		prefix := []byte{0xde, 0xad, 0xbe, 0xef}
		buf := EncodeInto(append([]byte(nil), prefix...), c, v)
		standalone := Encode(c, v)
		if string(buf[len(prefix):]) != string(standalone) {
			t.Fatalf("%s: mid-buffer frame differs from standalone", c)
		}
		dec, err := Decode(buf[len(prefix):])
		if err != nil {
			t.Fatal(err)
		}
		dec2, err := Decode(standalone)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec {
			if dec[i] != dec2[i] {
				t.Fatalf("%s: mid-buffer decode diverged at %d", c, i)
			}
		}
	}
}

func TestCodecString(t *testing.T) {
	if Float64.String() != "float64" || Float32.String() != "float32" || Quant8.String() != "quant8" {
		t.Fatal("codec names wrong")
	}
}

func BenchmarkEncodeQuant8(b *testing.B) {
	v := randVec(rng.New(1), 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Encode(Quant8, v)
	}
}

func BenchmarkDecodeFloat32(b *testing.B) {
	frame := Encode(Float32, randVec(rng.New(1), 10000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Decode(frame)
	}
}

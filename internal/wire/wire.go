// Package wire defines the on-the-wire encoding of model parameter
// vectors exchanged between clients and server. The simulator's
// communication accounting (fl.CommStats) models volumes; this package
// makes those bytes concrete — including the lossy narrow encodings
// (float32, int8 range quantization) that federated deployments use to cut
// uplink cost — so compression ablations measure real encoded sizes.
//
// Every message is framed as:
//
//	magic (2B) | codec (1B) | reserved (1B) | count (4B LE) |
//	codec-specific header | payload | crc32 of everything before it (4B)
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Codec identifies a parameter encoding.
type Codec uint8

const (
	// Float64 is the lossless 8-byte encoding.
	Float64 Codec = iota
	// Float32 halves the payload with ~1e-7 relative rounding.
	Float32
	// Quant8 is linear 8-bit range quantization: payload carries one
	// byte per value plus a (min, scale) float64 header pair.
	Quant8
	// TopK is the sparse codec: only the k most-changed coordinates
	// travel, as (index, float64 value) pairs — see sparse.go.
	TopK
	// TopKQuant8 composes the two lossy axes: a TopK frame whose kept
	// values ride the Quant8 range quantizer (1 byte each).
	TopKQuant8
)

// String returns the codec name.
func (c Codec) String() string {
	switch c {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Quant8:
		return "quant8"
	case TopK:
		return "topk"
	case TopKQuant8:
		return "topk-quant8"
	default:
		return fmt.Sprintf("Codec(%d)", uint8(c))
	}
}

const magic = 0xFC5A // "FedClust" frame marker

// headerLen is the fixed frame prefix length.
const headerLen = 2 + 1 + 1 + 4

// EncodedSize returns the total frame size for n values under a dense
// codec c. Sparse codecs panic — their size depends on the kept count,
// which the caller must supply via EncodedSizeSparse.
func EncodedSize(c Codec, n int) int {
	switch c {
	case Float64:
		return headerLen + 8*n + 4
	case Float32:
		return headerLen + 4*n + 4
	case Quant8:
		return headerLen + 16 + n + 4
	case TopK, TopKQuant8:
		panic(fmt.Sprintf("wire: EncodedSize(%s) needs a kept count — use EncodedSizeSparse", c))
	default:
		panic(fmt.Sprintf("wire: unknown codec %d", uint8(c)))
	}
}

// Encode frames vec under the chosen codec.
func Encode(c Codec, vec []float64) []byte {
	return EncodeInto(make([]byte, 0, EncodedSize(c, len(vec))), c, vec)
}

// EncodeInto appends the frame for vec under codec c to dst and returns
// the extended slice. It is the append-style form of Encode: pass a
// reused buffer (dst[:0]) and the warm path allocates nothing. The frame
// may land mid-buffer — its checksum covers only the bytes appended by
// this call — so transports can append a frame directly after their own
// message headers.
func EncodeInto(dst []byte, c Codec, vec []float64) []byte {
	start := len(dst)
	out := append(dst, byte(magic>>8), byte(magic&0xff), byte(c), 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(vec)))
	switch c {
	case Float64:
		for _, v := range vec {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	case Float32:
		for _, v := range vec {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(v)))
		}
	case Quant8:
		lo, hi := rangeOf(vec)
		scale := (hi - lo) / 255
		if scale == 0 {
			scale = 1 // constant vector: all bytes 0, min carries the value
		}
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(lo))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(scale))
		for _, v := range vec {
			// The range is finite (rangeOf skips non-finite values), so
			// degenerate inputs clamp deterministically: -Inf and NaN to
			// the bottom byte — !(q > 0) is the NaN-safe form of q < 0 —
			// and +Inf to the top.
			q := math.Round((v - lo) / scale)
			if !(q > 0) {
				q = 0
			}
			if q > 255 {
				q = 255
			}
			out = append(out, byte(q))
		}
	default:
		panic(fmt.Sprintf("wire: unknown codec %d", uint8(c)))
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out[start:]))
	return out
}

// EncodeFloat32Into appends a Float32 frame built directly from float32
// values, bit-identical to EncodeInto(dst, Float32, widened): widening a
// float32 to float64 and rounding back is the identity, so a producer
// that already holds float32 (the float32 training path's shadow
// parameters) can skip both conversions — a true zero-convert fast path,
// not a different encoding.
func EncodeFloat32Into(dst []byte, vec []float32) []byte {
	start := len(dst)
	out := append(dst, byte(magic>>8), byte(magic&0xff), byte(Float32), 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(vec)))
	for _, v := range vec {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out[start:]))
	return out
}

// FrameCodec returns the codec a frame was encoded under without
// decoding it — the accessor transports use to mirror a request's codec
// in the reply, so the header layout stays this package's private
// knowledge.
func FrameCodec(frame []byte) (Codec, error) {
	if len(frame) < headerLen {
		return 0, fmt.Errorf("wire: frame too short (%d bytes)", len(frame))
	}
	if frame[0] != byte(magic>>8) || frame[1] != byte(magic&0xff) {
		return 0, fmt.Errorf("wire: bad magic %#x%02x", frame[0], frame[1])
	}
	switch c := Codec(frame[2]); c {
	case Float64, Float32, Quant8, TopK, TopKQuant8:
		return c, nil
	default:
		return 0, fmt.Errorf("wire: unknown codec %d", uint8(c))
	}
}

// Decode parses a frame produced by Encode, returning the decoded values.
// It returns an error (never panics) on truncation, bad magic, unknown
// codec, or checksum mismatch — a server must survive malformed client
// uploads.
func Decode(frame []byte) ([]float64, error) {
	return DecodeInto(nil, frame)
}

// DecodeInto is Decode writing into dst (grown when too small) instead of
// a fresh slice, so a warm receive path allocates nothing. The returned
// slice aliases dst's backing array when it fits.
func DecodeInto(dst []float64, frame []byte) ([]float64, error) {
	if len(frame) < headerLen+4 {
		return nil, fmt.Errorf("wire: frame too short (%d bytes)", len(frame))
	}
	if frame[0] != byte(magic>>8) || frame[1] != byte(magic&0xff) {
		return nil, fmt.Errorf("wire: bad magic %#x%02x", frame[0], frame[1])
	}
	body, sum := frame[:len(frame)-4], binary.LittleEndian.Uint32(frame[len(frame)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("wire: checksum mismatch")
	}
	c := Codec(frame[2])
	switch c {
	case Float64, Float32, Quant8:
	case TopK, TopKQuant8:
		// A sparse frame is an overlay; materialized here against a
		// zero reference for DecodeInto's uniform dense contract.
		return decodeSparseInto(dst, frame)
	default:
		return nil, fmt.Errorf("wire: unknown codec %d", uint8(c))
	}
	n := int(binary.LittleEndian.Uint32(frame[4:8]))
	if n < 0 {
		return nil, fmt.Errorf("wire: negative count")
	}
	if want := EncodedSize(c, n); want != len(frame) {
		return nil, fmt.Errorf("wire: frame length %d, want %d for %s×%d", len(frame), want, c, n)
	}
	payload := frame[headerLen : len(frame)-4]
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	switch c {
	case Float64:
		for i := 0; i < n; i++ {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case Float32:
		for i := 0; i < n; i++ {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:])))
		}
	case Quant8:
		lo := math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
		scale := math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
		for i := 0; i < n; i++ {
			out[i] = lo + scale*float64(payload[16+i])
		}
	}
	return out, nil
}

// MaxError returns the worst-case absolute reconstruction error of codec c
// on vec (0 for Float64). Sparse codecs panic: an unsent coordinate's
// error equals its full magnitude and is bounded by the error-feedback
// residual, not by the codec, so a dense-style bound would let
// divergence tests pass vacuously — use MaxErrorKept for the
// coordinates a sparse frame actually carries.
func MaxError(c Codec, vec []float64) float64 {
	if c.Sparse() {
		panic(fmt.Sprintf("wire: MaxError(%s) is not defined for sparse codecs — unsent-coordinate error is the EF residual's contract; use MaxErrorKept", c))
	}
	dec, err := Decode(Encode(c, vec))
	if err != nil {
		panic(err) // encode→decode of a valid vector cannot fail
	}
	var m float64
	for i := range vec {
		if d := math.Abs(vec[i] - dec[i]); d > m {
			m = d
		}
	}
	return m
}

// rangeOf returns the finite min/max of vec. NaN and ±Inf are excluded
// so the Quant8 (min, scale) header always holds finite values and a
// decoded vector is always finite, whatever the input; with no finite
// value at all, both bounds are 0.
func rangeOf(vec []float64) (lo, hi float64) {
	seen := false
	for _, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if !seen {
			lo, hi, seen = v, v, true
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

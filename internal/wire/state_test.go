package wire

import (
	"bytes"
	"testing"
)

func TestStateFrameRoundTrip(t *testing.T) {
	words := []uint64{0, 1, ^uint64(0), 0xdeadbeef, 42}
	frame := AppendStateFrame(nil, 7, words)
	if len(frame) != StateFrameSize(len(words)) {
		t.Fatalf("frame size %d, want %d", len(frame), StateFrameSize(len(words)))
	}
	kind, got, err := DecodeStateFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if kind != 7 {
		t.Errorf("kind %d, want 7", kind)
	}
	if len(got) != len(words) {
		t.Fatalf("decoded %d words, want %d", len(got), len(words))
	}
	for i := range words {
		if got[i] != words[i] {
			t.Errorf("word %d: %d, want %d", i, got[i], words[i])
		}
	}
}

func TestStateFrameMidBuffer(t *testing.T) {
	// Two frames back to back, split apart via StateFrameLen.
	buf := AppendStateFrame(nil, 1, []uint64{10, 20})
	buf = AppendStateFrame(buf, 2, []uint64{30})
	n1, err := StateFrameLen(buf, len(buf))
	if err != nil {
		t.Fatalf("StateFrameLen: %v", err)
	}
	if k, w, err := DecodeStateFrame(buf[:n1]); err != nil || k != 1 || len(w) != 2 {
		t.Fatalf("first frame: kind %d words %v err %v", k, w, err)
	}
	n2, err := StateFrameLen(buf[n1:], len(buf))
	if err != nil {
		t.Fatalf("StateFrameLen(second): %v", err)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("frames cover %d of %d bytes", n1+n2, len(buf))
	}
	if k, w, err := DecodeStateFrame(buf[n1:]); err != nil || k != 2 || w[0] != 30 {
		t.Fatalf("second frame: kind %d words %v err %v", k, w, err)
	}
}

func TestStateFrameRejectsCorruption(t *testing.T) {
	frame := AppendStateFrame(nil, 3, []uint64{1, 2, 3})
	cases := map[string][]byte{
		"truncated":  frame[:len(frame)-1],
		"bad magic":  append([]byte{0xff}, frame[1:]...),
		"bit flip":   flip(frame, 9),
		"crc flip":   flip(frame, len(frame)-2),
		"count lies": flip(frame, 4),
		"empty":      {},
	}
	for name, f := range cases {
		if _, _, err := DecodeStateFrame(f); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestStateFrameLenBounds(t *testing.T) {
	frame := AppendStateFrame(nil, 0, make([]uint64, 100))
	if _, err := StateFrameLen(frame, 50); err == nil {
		t.Error("oversized frame accepted under tight limit")
	}
	// A hostile count must not overflow into a small positive size.
	hostile := append([]byte(nil), frame[:8]...)
	hostile[4], hostile[5], hostile[6], hostile[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := StateFrameLen(hostile, 1<<20); err == nil {
		t.Error("u32-max count accepted")
	}
}

func TestFrameLen(t *testing.T) {
	for _, c := range []Codec{Float64, Float32, Quant8} {
		vec := []float64{1, 2, 3, 4}
		frame := Encode(c, vec)
		frame = append(frame, 0xab, 0xcd) // trailing garbage from a later frame
		n, err := FrameLen(frame, len(frame))
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if n != EncodedSize(c, len(vec)) {
			t.Errorf("%s: len %d, want %d", c, n, EncodedSize(c, len(vec)))
		}
		if _, err := Decode(frame[:n]); err != nil {
			t.Errorf("%s: sliced frame fails decode: %v", c, err)
		}
	}
	if _, err := FrameLen([]byte{1, 2}, 100); err == nil {
		t.Error("short buffer accepted")
	}
}

func flip(b []byte, i int) []byte {
	out := bytes.Clone(b)
	out[i] ^= 0x40
	return out
}

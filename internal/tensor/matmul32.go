package tensor

import (
	"fmt"

	"fedclust/internal/sched"
)

// parallelThreshold32 is the float32 analogue of parallelThreshold. The
// float32 kernels move twice the elements per cache line and (on AVX2
// hosts) eight per instruction, so a product must be several times
// larger before the executor handoff pays for itself.
const parallelThreshold32 = 4 * parallelThreshold

// splitRows32 is splitRows with the float32 dispatch threshold.
func splitRows32(m, work int) bool {
	return work >= parallelThreshold32 && procsHint() >= 2 && m >= 2
}

// rowsKernel32 computes rows [lo, hi) of one float32 matmul variant.
type rowsKernel32 func(dst, a, b *Tensor32, lo, hi int)

// parDispatch32 is the float32 operand slot of the in-flight parallel
// region, guarded by the executor claim exactly like parDispatch: only
// the goroutine holding sched.Default()'s claim writes it, and it is
// cleared before release, so the dispatch stays closure- and
// allocation-free.
var parDispatch32 struct {
	kernel    rowsKernel32
	dst, a, b *Tensor32
	chunk, m  int
}

// parRunBlock32 is the persistent task executor workers run for float32
// regions: block i covers rows [i*chunk, min((i+1)*chunk, m)).
var parRunBlock32 = func(_, blk int) {
	d := &parDispatch32
	lo := blk * d.chunk
	hi := lo + d.chunk
	if hi > d.m {
		hi = d.m
	}
	d.kernel(d.dst, d.a, d.b, lo, hi)
}

// parallelRows32 runs kernel over contiguous row blocks of [0, m) on the
// shared executor and reports whether it ran, with the same
// serial-fallback contract as parallelRows: refusal under a busy or
// contended executor leaves the caller on the serial kernel, and the
// partitioning never affects results because every output element is
// produced by exactly one block with a fixed summation order.
func parallelRows32(m int, kernel rowsKernel32, dst, a, b *Tensor32) bool {
	if sched.Busy() {
		return false
	}
	p := sched.Default()
	if !p.TryAcquire() {
		return false
	}
	defer p.Release()
	width := refreshProcs()
	if width > m {
		width = m
	}
	chunk := (m + width - 1) / width
	blocks := (m + chunk - 1) / chunk
	d := &parDispatch32
	d.kernel, d.dst, d.a, d.b = kernel, dst, a, b
	d.chunk, d.m = chunk, m
	p.RunAcquired(blocks, width, parRunBlock32)
	d.kernel, d.dst, d.a, d.b = nil, nil, nil, nil
	return true
}

// MatMul32Into computes dst = a · b for rank-2 float32 tensors. dst must
// not alias a or b and must have shape (a.rows, b.cols).
//
// Unlike the float64 kernels there is no skip-zero rule: the float32
// path exists for dense data where zero tests cost more than they save
// and would break the 4-wide axpy blocking. Each output element is still
// summed in a fixed order determined only by the operand shapes, so
// parallel and serial runs are bit-identical.
func MatMul32Into(dst, a, b *Tensor32) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMul32 requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul32 inner dimension mismatch %v · %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul32 dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if !splitRows32(m, m*n*k) || !parallelRows32(m, matmul32Rows, dst, a, b) {
		matmul32Rows(dst, a, b, 0, m)
		return
	}
}

// matmul32Rows computes rows [lo,hi) of dst = a·b: zero the output row,
// then accumulate four b-rows at a time through the 4-wide axpy kernel
// (one dst pass per four p values), with a single-row axpy remainder.
func matmul32Rows(dst, a, b *Tensor32, lo, hi int) {
	k, n := a.Shape[1], b.Shape[1]
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*n : (i+1)*n]
		for x := range outRow {
			outRow[x] = 0
		}
		aRow := a.Data[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			axpy432(outRow,
				b.Data[p*n:(p+1)*n],
				b.Data[(p+1)*n:(p+2)*n],
				b.Data[(p+2)*n:(p+3)*n],
				b.Data[(p+3)*n:(p+4)*n],
				aRow[p], aRow[p+1], aRow[p+2], aRow[p+3])
		}
		for ; p < k; p++ {
			axpy32(outRow, b.Data[p*n:(p+1)*n], aRow[p])
		}
	}
}

// MatMulTransB32Into computes dst = a · bᵀ for rank-2 float32 tensors
// without materializing the transpose: a is (m, k), b is (n, k), dst is
// (m, n) and must not alias a or b. Four b-rows are processed per dot
// kernel call, sharing the a-row loads.
func MatMulTransB32Into(dst, a, b *Tensor32) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMulTransB32 requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB32 inner dimension mismatch %v · %vᵀ", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB32 dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if !splitRows32(m, m*n*k) || !parallelRows32(m, matmulTransB32Rows, dst, a, b) {
		matmulTransB32Rows(dst, a, b, 0, m)
		return
	}
}

// matmulTransB32Rows computes rows [lo,hi) of dst = a·bᵀ, four output
// columns at a time through the 4-wide dot kernel with a single-dot
// remainder.
func matmulTransB32Rows(dst, a, b *Tensor32, lo, hi int) {
	k, n := a.Shape[1], dst.Shape[1]
	for i := lo; i < hi; i++ {
		aRow := a.Data[i*k : (i+1)*k]
		outRow := dst.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			outRow[j], outRow[j+1], outRow[j+2], outRow[j+3] = dot432(aRow,
				b.Data[j*k:(j+1)*k],
				b.Data[(j+1)*k:(j+2)*k],
				b.Data[(j+2)*k:(j+3)*k],
				b.Data[(j+3)*k:(j+4)*k])
		}
		for ; j < n; j++ {
			outRow[j] = dot32(aRow, b.Data[j*k:(j+1)*k])
		}
	}
}

// MatMulTransA32Into computes dst = aᵀ · b for rank-2 float32 tensors
// without materializing the transpose: a is (k, m), b is (k, n), dst is
// (m, n) and must not alias a or b.
func MatMulTransA32Into(dst, a, b *Tensor32) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMulTransA32 requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA32 inner dimension mismatch %vᵀ · %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransA32 dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if !splitRows32(m, m*n*k) || !parallelRows32(m, matmulTransA32Rows, dst, a, b) {
		matmulTransA32Rows(dst, a, b, 0, m)
		return
	}
}

// matmulTransA32Rows computes rows [lo,hi) of dst = aᵀ·b: zero the
// output row, then stream a's column i against b's rows four at a time
// through the 4-wide axpy kernel.
func matmulTransA32Rows(dst, a, b *Tensor32, lo, hi int) {
	k, m, n := a.Shape[0], a.Shape[1], dst.Shape[1]
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*n : (i+1)*n]
		for x := range outRow {
			outRow[x] = 0
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			axpy432(outRow,
				b.Data[p*n:(p+1)*n],
				b.Data[(p+1)*n:(p+2)*n],
				b.Data[(p+2)*n:(p+3)*n],
				b.Data[(p+3)*n:(p+4)*n],
				a.Data[p*m+i], a.Data[(p+1)*m+i], a.Data[(p+2)*m+i], a.Data[(p+3)*m+i])
		}
		for ; p < k; p++ {
			axpy32(outRow, b.Data[p*n:(p+1)*n], a.Data[p*m+i])
		}
	}
}

package tensor

import (
	"runtime"
	"testing"

	"fedclust/internal/rng"
	"fedclust/internal/sched"
)

// randMat fills an m×n tensor with mixed-magnitude values (including
// exact zeros, to exercise the skip-zero rule).
func randMat(r *rng.Rng, m, n int) *Tensor {
	t := New(m, n)
	for i := range t.Data {
		if r.Intn(8) == 0 {
			continue // leave an exact zero
		}
		t.Data[i] = r.NormFloat64()
	}
	return t
}

// withProcs runs f under a temporary GOMAXPROCS so the parallel branch
// of splitRows is reachable even on single-CPU machines.
func withProcs(p int, f func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	f()
}

// TestParallelMatMulBitIdentical: the executor-backed row-block dispatch
// must produce bit-identical results to the serial kernels for all three
// variants, at several widths. 96×512·512×96 is ~25M multiply-adds, far
// above parallelThreshold.
func TestParallelMatMulBitIdentical(t *testing.T) {
	r := rng.New(42)
	const m, k, n = 96, 512, 96
	a := randMat(r, m, k)
	b := randMat(r, k, n)
	bT := randMat(r, n, k)
	aT := randMat(r, k, m)

	serialMM, serialTB, serialTA := New(m, n), New(m, n), New(m, n)
	matmulRows(serialMM, a, b, 0, m)
	matmulTransBRows(serialTB, a, bT, 0, m)
	matmulTransARows(serialTA, aT, b, 0, m)

	for _, procs := range []int{2, 3, 8} {
		withProcs(procs, func() {
			gotMM, gotTB, gotTA := New(m, n), New(m, n), New(m, n)
			MatMulInto(gotMM, a, b)
			MatMulTransBInto(gotTB, a, bT)
			MatMulTransAInto(gotTA, aT, b)
			for _, c := range []struct {
				name      string
				got, want *Tensor
			}{
				{"MatMul", gotMM, serialMM},
				{"MatMulTransB", gotTB, serialTB},
				{"MatMulTransA", gotTA, serialTA},
			} {
				for i := range c.want.Data {
					if c.got.Data[i] != c.want.Data[i] {
						t.Fatalf("procs=%d %s: element %d differs: %x vs %x",
							procs, c.name, i, c.got.Data[i], c.want.Data[i])
					}
				}
			}
		})
	}
}

// TestMatMulNestedFallsBackSerial: a large matmul issued from inside an
// executor region must not try to claim the executor again — it runs the
// serial kernel inline (no deadlock, no goroutine fan-out) and still
// produces the exact result.
func TestMatMulNestedFallsBackSerial(t *testing.T) {
	r := rng.New(7)
	const m, k, n = 64, 512, 64
	a := randMat(r, m, k)
	b := randMat(r, k, n)
	want := New(m, n)
	matmulRows(want, a, b, 0, m)

	withProcs(4, func() {
		outs := make([]*Tensor, 4)
		sched.Default().Run(len(outs), 4, func(w, i int) {
			out := New(m, n)
			MatMulInto(out, a, b) // nested: must fall back serial
			outs[i] = out
		})
		for i, out := range outs {
			for j := range want.Data {
				if out.Data[j] != want.Data[j] {
					t.Fatalf("nested matmul %d: element %d differs", i, j)
				}
			}
		}
	})
}

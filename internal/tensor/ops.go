package tensor

import (
	"fmt"
	"math"
)

// checkSameShape panics unless a and b have identical shapes.
func checkSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// AddInto sets dst = a + b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Tensor) {
	checkSameShape("Add", a, b)
	checkSameShape("Add", a, dst)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Add returns a + b as a new tensor.
func Add(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	AddInto(out, a, b)
	return out
}

// SubInto sets dst = a - b elementwise. dst may alias a or b.
func SubInto(dst, a, b *Tensor) {
	checkSameShape("Sub", a, b)
	checkSameShape("Sub", a, dst)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Sub returns a - b as a new tensor.
func Sub(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	SubInto(out, a, b)
	return out
}

// MulInto sets dst = a * b elementwise (Hadamard product).
func MulInto(dst, a, b *Tensor) {
	checkSameShape("Mul", a, b)
	checkSameShape("Mul", a, dst)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Mul returns the elementwise product of a and b.
func Mul(a, b *Tensor) *Tensor {
	out := New(a.Shape...)
	MulInto(out, a, b)
	return out
}

// Scale multiplies every element of t by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScaled adds s*o to t in place (axpy).
func (t *Tensor) AddScaled(o *Tensor, s float64) {
	checkSameShape("AddScaled", t, o)
	for i := range t.Data {
		t.Data[i] += s * o.Data[i]
	}
}

// Apply replaces every element x with f(x) in place.
func (t *Tensor) Apply(f func(float64) float64) {
	for i, x := range t.Data {
		t.Data[i] = f(x)
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, x := range t.Data {
		s += x
	}
	return s
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	var s float64
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm returns the Euclidean (Frobenius) norm of t.
func (t *Tensor) Norm() float64 {
	var s float64
	for _, x := range t.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, x := range t.Data {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether a and b have the same shape and elementwise
// absolute difference at most tol.
func Equal(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

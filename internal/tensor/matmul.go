package tensor

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"fedclust/internal/sched"
)

// parallelThreshold is the minimum number of multiply-adds in a matmul
// before the work is split across the shared executor. Small products
// stay on the calling goroutine to avoid scheduling overhead.
const parallelThreshold = 64 * 1024

// MatMul returns a(m×k) · b(k×n) as a new m×n tensor, parallelizing over
// row blocks when the product is large enough.
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a · b for rank-2 tensors. dst must not alias
// a or b and must have shape (a.rows, b.cols).
func MatMulInto(dst, a, b *Tensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if !splitRows(m, m*n*k) || !parallelRows(m, matmulRows, dst, a, b) {
		matmulRows(dst, a, b, 0, m)
		return
	}
}

// cachedProcs caches runtime.GOMAXPROCS(0) so the splitRows gate — on
// the hot path of every matmul, parallel or not — costs one atomic load
// instead of a runtime call. refreshProcs re-reads the live value inside
// parallelRows after a successful executor acquire (off the per-call hot
// path), so a mid-process GOMAXPROCS change is picked up at the next
// parallel region; the lag is harmless because the partitioning never
// affects results, only which path computes them.
var cachedProcs atomic.Int32

// procsHint returns the cached GOMAXPROCS value, reading the runtime
// only on first use.
func procsHint() int {
	if p := cachedProcs.Load(); p > 0 {
		return int(p)
	}
	return refreshProcs()
}

// refreshProcs re-reads GOMAXPROCS from the runtime and updates the cache.
func refreshProcs() int {
	p := runtime.GOMAXPROCS(0)
	cachedProcs.Store(int32(p))
	return p
}

// splitRows reports whether an m-row product of `work` multiply-adds is
// worth spreading across the executor. Small products — the per-batch
// products inside a training step — stay on the serial kernels, which
// perform no scheduling work and no allocations.
func splitRows(m, work int) bool {
	return work >= parallelThreshold && procsHint() >= 2 && m >= 2
}

// rowsKernel computes rows [lo, hi) of one matmul variant. The three
// serial kernels (matmulRows, matmulTransBRows, matmulTransARows) all
// have this shape, so the parallel dispatch is a plain function value —
// no per-call closure.
type rowsKernel func(dst, a, b *Tensor, lo, hi int)

// parDispatch is the operand slot of the in-flight parallel region. It
// is guarded by the executor claim: only the goroutine that holds
// sched.Default()'s claim writes it, and it is cleared before the claim
// is released, so the executor's single-region discipline makes the
// whole dispatch closure-free and allocation-free.
var parDispatch struct {
	kernel    rowsKernel
	dst, a, b *Tensor
	chunk, m  int
}

// parRunBlock is the persistent task executor workers run: block i
// covers rows [i*chunk, min((i+1)*chunk, m)).
var parRunBlock = func(_, blk int) {
	d := &parDispatch
	lo := blk * d.chunk
	hi := lo + d.chunk
	if hi > d.m {
		hi = d.m
	}
	d.kernel(d.dst, d.a, d.b, lo, hi)
}

// parallelRows runs kernel over contiguous row blocks of [0, m) on the
// shared executor and reports whether it ran. It refuses — returning
// false, caller must run the serial kernel — when the executor is
// unavailable: the call is nested inside a running region (a kernel
// invoked from a client task of the round engine, or from an Env pinned
// to a private pool) or racing a concurrent region. That refusal is what
// eliminates nested oversubscription. The partitioning never affects
// results: every output element is produced by exactly one block with a
// fixed per-element summation order, so parallel and serial runs are
// bit-identical.
func parallelRows(m int, kernel rowsKernel, dst, a, b *Tensor) bool {
	if sched.Busy() {
		return false
	}
	p := sched.Default()
	if !p.TryAcquire() {
		return false
	}
	defer p.Release()
	width := refreshProcs()
	if width > m {
		width = m
	}
	chunk := (m + width - 1) / width
	blocks := (m + chunk - 1) / chunk
	d := &parDispatch
	d.kernel, d.dst, d.a, d.b = kernel, dst, a, b
	d.chunk, d.m = chunk, m
	p.RunAcquired(blocks, width, parRunBlock)
	d.kernel, d.dst, d.a, d.b = nil, nil, nil, nil
	return true
}

// MatMulTransBInto computes dst = a · bᵀ for rank-2 tensors without
// materializing the transpose: a is (m, k), b is (n, k), dst is (m, n)
// and must not alias a or b. Each output element is the dot product of an
// a-row with a b-row, summed over p in increasing order with the same
// skip-zero rule as matmulRows, so the result is bit-identical to
// MatMul(a, Transpose(b)).
func MatMulTransBInto(dst, a, b *Tensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMulTransB requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v · %vᵀ", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if !splitRows(m, m*n*k) || !parallelRows(m, matmulTransBRows, dst, a, b) {
		matmulTransBRows(dst, a, b, 0, m)
		return
	}
}

// matmulTransBRows computes rows [lo,hi) of dst = a·bᵀ as dot products of
// contiguous a-rows and b-rows, four b-rows at a time. The blocking only
// adds independent accumulator chains (ILP); each output element is still
// summed over p in increasing order with the skip-zero rule, so results
// are bit-identical to the unblocked form.
//
// The unrolled 3/2/1 remainder cases are load-bearing, not residue: for
// small-n operands (a convolution with few output channels, e.g.
// LeNet-5's first conv) the remainder IS the whole computation, and the
// multi-chain unrolls are what keep it latency-hidden — a single-chain
// scalar remainder measured ~1.7× slower end to end on LeNet forward.
// When touching the summation rule (p order, skip-zero), update ALL
// four bodies identically; the golden-fingerprint suite enforces it.
func matmulTransBRows(dst, a, b *Tensor, lo, hi int) {
	k, n := a.Shape[1], dst.Shape[1]
	for i := lo; i < hi; i++ {
		aRow := a.Data[i*k : (i+1)*k]
		outRow := dst.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			b2 := b.Data[(j+2)*k : (j+3)*k]
			b3 := b.Data[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float64
			for p, av := range aRow {
				if av == 0 {
					continue
				}
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			outRow[j], outRow[j+1], outRow[j+2], outRow[j+3] = s0, s1, s2, s3
		}
		switch n - j {
		case 3:
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			b2 := b.Data[(j+2)*k : (j+3)*k]
			var s0, s1, s2 float64
			for p, av := range aRow {
				if av == 0 {
					continue
				}
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
			}
			outRow[j], outRow[j+1], outRow[j+2] = s0, s1, s2
		case 2:
			b0 := b.Data[j*k : (j+1)*k]
			b1 := b.Data[(j+1)*k : (j+2)*k]
			var s0, s1 float64
			for p, av := range aRow {
				if av == 0 {
					continue
				}
				s0 += av * b0[p]
				s1 += av * b1[p]
			}
			outRow[j], outRow[j+1] = s0, s1
		case 1:
			b0 := b.Data[j*k : (j+1)*k]
			var s0 float64
			for p, av := range aRow {
				if av == 0 {
					continue
				}
				s0 += av * b0[p]
			}
			outRow[j] = s0
		}
	}
}

// MatMulTransAInto computes dst = aᵀ · b without materializing the
// transpose: a is (k, m), b is (k, n), dst is (m, n) and must not alias
// a or b. Row i of dst accumulates a's column i against b's rows over p
// in increasing order with the same skip-zero rule as matmulRows, so the
// result is bit-identical to MatMul(Transpose(a), b).
func MatMulTransAInto(dst, a, b *Tensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMulTransA requires rank-2 tensors")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ · %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransA dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	if !splitRows(m, m*n*k) || !parallelRows(m, matmulTransARows, dst, a, b) {
		matmulTransARows(dst, a, b, 0, m)
		return
	}
}

// matmulTransARows computes rows [lo,hi) of dst = aᵀ·b, streaming a's
// column i against b's rows.
func matmulTransARows(dst, a, b *Tensor, lo, hi int) {
	k, m, n := a.Shape[0], a.Shape[1], dst.Shape[1]
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*n : (i+1)*n]
		for x := range outRow {
			outRow[x] = 0
		}
		for p := 0; p < k; p++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			bRow := b.Data[p*n : (p+1)*n]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// matmulRows computes rows [lo,hi) of dst = a·b using an ikj loop order
// that streams b rows sequentially (cache-friendly without explicit tiling).
func matmulRows(dst, a, b *Tensor, lo, hi int) {
	k, n := a.Shape[1], b.Shape[1]
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*n : (i+1)*n]
		for x := range outRow {
			outRow[x] = 0
		}
		aRow := a.Data[i*k : (i+1)*k]
		for p, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b.Data[p*n : (p+1)*n]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j*m+i] = v
		}
	}
	return out
}

// MatVec returns a(m×k) · x(k) as a new length-m vector tensor.
func MatVec(a, x *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(x.Shape) != 1 {
		panic("tensor: MatVec requires a rank-2 matrix and rank-1 vector")
	}
	m, k := a.Shape[0], a.Shape[1]
	if x.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v · %v", a.Shape, x.Shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		var s float64
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

// OuterInto accumulates dst += x ⊗ y for vectors x (m) and y (n) into the
// m×n matrix dst.
func OuterInto(dst, x, y *Tensor) {
	if len(dst.Shape) != 2 || len(x.Shape) != 1 || len(y.Shape) != 1 {
		panic("tensor: OuterInto requires matrix dst and vector x, y")
	}
	m, n := dst.Shape[0], dst.Shape[1]
	if x.Shape[0] != m || y.Shape[0] != n {
		panic(fmt.Sprintf("tensor: OuterInto shape mismatch dst %v, x %v, y %v", dst.Shape, x.Shape, y.Shape))
	}
	for i := 0; i < m; i++ {
		xv := x.Data[i]
		if xv == 0 {
			continue
		}
		row := dst.Data[i*n : (i+1)*n]
		for j, yv := range y.Data {
			row[j] += xv * yv
		}
	}
}

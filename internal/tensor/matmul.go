package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-adds in a matmul
// before the work is split across goroutines. Small products stay on the
// calling goroutine to avoid scheduling overhead.
const parallelThreshold = 64 * 1024

// MatMul returns a(m×k) · b(k×n) as a new m×n tensor, parallelizing over
// row blocks when the product is large enough.
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Shape[0], b.Shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a · b for rank-2 tensors. dst must not alias
// a or b and must have shape (a.rows, b.cols).
func MatMulInto(dst, a, b *Tensor) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.Shape, b.Shape))
	}
	if dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMul dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	work := m * n * k
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers < 2 || m < 2 {
		matmulRows(dst, a, b, 0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRows computes rows [lo,hi) of dst = a·b using an ikj loop order
// that streams b rows sequentially (cache-friendly without explicit tiling).
func matmulRows(dst, a, b *Tensor, lo, hi int) {
	k, n := a.Shape[1], b.Shape[1]
	for i := lo; i < hi; i++ {
		outRow := dst.Data[i*n : (i+1)*n]
		for x := range outRow {
			outRow[x] = 0
		}
		aRow := a.Data[i*k : (i+1)*k]
		for p, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b.Data[p*n : (p+1)*n]
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j*m+i] = v
		}
	}
	return out
}

// MatVec returns a(m×k) · x(k) as a new length-m vector tensor.
func MatVec(a, x *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(x.Shape) != 1 {
		panic("tensor: MatVec requires a rank-2 matrix and rank-1 vector")
	}
	m, k := a.Shape[0], a.Shape[1]
	if x.Shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v · %v", a.Shape, x.Shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		var s float64
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

// OuterInto accumulates dst += x ⊗ y for vectors x (m) and y (n) into the
// m×n matrix dst.
func OuterInto(dst, x, y *Tensor) {
	if len(dst.Shape) != 2 || len(x.Shape) != 1 || len(y.Shape) != 1 {
		panic("tensor: OuterInto requires matrix dst and vector x, y")
	}
	m, n := dst.Shape[0], dst.Shape[1]
	if x.Shape[0] != m || y.Shape[0] != n {
		panic(fmt.Sprintf("tensor: OuterInto shape mismatch dst %v, x %v, y %v", dst.Shape, x.Shape, y.Shape))
	}
	for i := 0; i < m; i++ {
		xv := x.Data[i]
		if xv == 0 {
			continue
		}
		row := dst.Data[i*n : (i+1)*n]
		for j, yv := range y.Data {
			row[j] += xv * yv
		}
	}
}

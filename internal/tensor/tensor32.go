package tensor

import "fmt"

// Tensor32 is the float32 mirror of Tensor: a dense row-major array of
// arbitrary rank backing the SIMD-friendly compute path. The float64
// Tensor stays the golden reference (DESIGN.md §10); Tensor32 exists so
// the hot training loops can run at twice the arithmetic density with
// half the memory traffic, under the same explicit-shape discipline.
type Tensor32 struct {
	// Shape holds the extent of each dimension; it must not be mutated
	// after construction (Reshape returns a new header instead).
	Shape []int
	// Data is the flat backing storage of length prod(Shape).
	Data []float32
}

// New32 returns a zero-filled float32 tensor of the given shape.
func New32(shape ...int) *Tensor32 {
	return &Tensor32{Shape: append([]int(nil), shape...), Data: make([]float32, prod(shape))}
}

// FromSlice32 wraps data in a tensor of the given shape. The slice is
// used directly (not copied); it panics if len(data) != prod(shape).
func FromSlice32(data []float32, shape ...int) *Tensor32 {
	if len(data) != prod(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor32{Shape: append([]int(nil), shape...), Data: data}
}

// Clone returns a deep copy of t.
func (t *Tensor32) Clone() *Tensor32 {
	c := New32(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Size returns the total number of elements.
func (t *Tensor32) Size() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor32) Rank() int { return len(t.Shape) }

// Dim returns the extent of dimension i.
func (t *Tensor32) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor32) SameShape(o *Tensor32) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a new tensor header sharing t's storage with a new shape.
// It panics if the element counts differ.
func (t *Tensor32) Reshape(shape ...int) *Tensor32 {
	if prod(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor32{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Fill sets every element to v.
func (t *Tensor32) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor32) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Row returns a view (shared storage) of row i of a rank-2 tensor.
func (t *Tensor32) Row(i int) []float32 {
	if len(t.Shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	cols := t.Shape[1]
	return t.Data[i*cols : (i+1)*cols]
}

// AddScaled accumulates t += s·o elementwise through the float32 axpy
// kernel. Shapes must match.
func (t *Tensor32) AddScaled(o *Tensor32, s float32) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	axpy32(t.Data, o.Data, s)
}

// String renders small tensors for debugging.
func (t *Tensor32) String() string {
	if len(t.Data) > 64 {
		return fmt.Sprintf("Tensor32%v[%d elems]", t.Shape, len(t.Data))
	}
	return fmt.Sprintf("Tensor32%v%v", t.Shape, t.Data)
}

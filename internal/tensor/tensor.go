// Package tensor implements dense row-major float64 tensors and the
// numerical kernels (parallel matrix multiply, im2col) that the neural
// network stack is built on.
//
// The package is deliberately small: shapes are explicit, storage is a flat
// []float64, and there is no autograd — layers in internal/nn implement
// their own backward passes against these kernels.
package tensor

import "fmt"

// Tensor is a dense row-major float64 array of arbitrary rank.
type Tensor struct {
	// Shape holds the extent of each dimension; it must not be mutated
	// after construction (Reshape returns a new header instead).
	Shape []int
	// Data is the flat backing storage of length prod(Shape).
	Data []float64
}

// prod returns the product of dims, and panics on negative extents.
func prod(dims []int) int {
	p := 1
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, dims))
		}
		p *= d
	}
	return p
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, prod(shape))}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if len(data) != prod(shape).
func FromSlice(data []float64, shape ...int) *Tensor {
	if len(data) != prod(shape) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a new tensor header sharing t's storage with a new shape.
// It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if prod(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// index converts multi-dimensional indices to a flat offset, with bounds
// checks on every axis.
func (t *Tensor) index(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (extent %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.index(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.index(idx)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Row returns a view (shared storage) of row i of a rank-2 tensor.
func (t *Tensor) Row(i int) []float64 {
	if len(t.Shape) != 2 {
		panic("tensor: Row requires a rank-2 tensor")
	}
	cols := t.Shape[1]
	return t.Data[i*cols : (i+1)*cols]
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	if len(t.Data) > 64 {
		return fmt.Sprintf("Tensor%v[%d elems]", t.Shape, len(t.Data))
	}
	return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
}

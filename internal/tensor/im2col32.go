package tensor

import "fmt"

// Im2Col32Into is the float32 mirror of Im2ColInto: it unrolls a single
// CHW image (flat slice of length InC*InH*InW) into a flat destination
// of length OutH*OutW × InC*KH*KW, one receptive-field row per output
// pixel, zero-padding out-of-range taps.
func Im2Col32Into(img []float32, g ConvGeom, dst []float32) {
	g.Validate()
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col32 image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(dst) != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Im2Col32 dst length %d, want %d", len(dst), outH*outW*rowLen))
	}
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			dst := dst[(oy*outW+ox)*rowLen:][:rowLen]
			di := 0
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							dst[di] = 0
						} else {
							dst[di] = img[chanBase+iy*g.InW+ix]
						}
						di++
					}
				}
			}
		}
	}
}

// Col2Im32Into is the float32 mirror of Col2ImInto: the adjoint of
// Im2Col32Into, scattering the columns gradient back into image space.
// img accumulates and must be pre-zeroed by the caller if a fresh
// gradient is wanted.
func Col2Im32Into(grad []float32, g ConvGeom, img []float32) {
	g.Validate()
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im32 image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(grad) != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Col2Im32 grad length %d, want %d", len(grad), outH*outW*rowLen))
	}
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			src := grad[(oy*outW+ox)*rowLen:][:rowLen]
			si := 0
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							img[chanBase+iy*g.InW+ix] += src[si]
						}
						si++
					}
				}
			}
		}
	}
}

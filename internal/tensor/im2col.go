package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution over CHW images.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate panics if the geometry is degenerate.
func (g ConvGeom) Validate() {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	if g.Stride <= 0 || g.Pad < 0 {
		panic(fmt.Sprintf("tensor: invalid conv stride/pad %+v", g))
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields empty output", g))
	}
}

// Im2Col unrolls a single CHW image (flat slice of length InC*InH*InW) into
// a (OutH*OutW) × (InC*KH*KW) matrix written into cols. Each row of the
// result is the receptive field of one output pixel, so convolution becomes
// cols · Wᵀ. cols must have exactly that shape.
func Im2Col(img []float64, g ConvGeom, cols *Tensor) {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if cols.Shape[0] != outH*outW || cols.Shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Im2Col cols shape %v, want [%d %d]", cols.Shape, outH*outW, rowLen))
	}
	Im2ColInto(img, g, cols.Data)
}

// Im2ColInto is Im2Col writing into a flat destination slice of length
// exactly OutH*OutW × InC*KH*KW — the allocation-free form layers use to
// unroll each image of a batch into its slice of a shared workspace.
func Im2ColInto(img []float64, g ConvGeom, dst []float64) {
	g.Validate()
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(dst) != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Im2Col dst length %d, want %d", len(dst), outH*outW*rowLen))
	}
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			dst := dst[(oy*outW+ox)*rowLen:][:rowLen]
			di := 0
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							dst[di] = 0
						} else {
							dst[di] = img[chanBase+iy*g.InW+ix]
						}
						di++
					}
				}
			}
		}
	}
}

// Col2Im scatters the columns gradient back into image space: the adjoint
// of Im2Col. grad has shape (OutH*OutW) × (InC*KH*KW); the result is
// accumulated into img (which must be pre-zeroed by the caller if a fresh
// gradient is wanted).
func Col2Im(grad *Tensor, g ConvGeom, img []float64) {
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if grad.Shape[0] != outH*outW || grad.Shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im grad shape %v, want [%d %d]", grad.Shape, outH*outW, rowLen))
	}
	Col2ImInto(grad.Data, g, img)
}

// Col2ImInto is Col2Im reading from a flat gradient slice of length
// exactly OutH*OutW × InC*KH*KW — the allocation-free adjoint layers use
// per image of a batched workspace. img accumulates and must be
// pre-zeroed by the caller if a fresh gradient is wanted.
func Col2ImInto(grad []float64, g ConvGeom, img []float64) {
	g.Validate()
	outH, outW := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	if len(grad) != outH*outW*rowLen {
		panic(fmt.Sprintf("tensor: Col2Im grad length %d, want %d", len(grad), outH*outW*rowLen))
	}
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			src := grad[(oy*outW+ox)*rowLen:][:rowLen]
			si := 0
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
							img[chanBase+iy*g.InW+ix] += src[si]
						}
						si++
					}
				}
			}
		}
	}
}

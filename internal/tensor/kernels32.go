package tensor

// Float32 kernel primitives. The four primitives below (dot, 4-wide dot,
// axpy, 4-wide axpy) are all the float32 matmul variants are built from;
// each has a hand-written AVX2+FMA implementation (simd_amd64.s) selected
// once at init when the host supports it, and a pure-Go fallback whose
// inner loops are written so the compiler eliminates every bounds check
// (re-slice b to len(a) up front; CI's check_bce gate enforces it).
//
// Summation contract: unlike the float64 kernels there is no skip-zero
// rule — float32 rows are dense and the SIMD lanes would break on it.
// Each primitive sums in a fixed order that depends only on the length n
// (multi-accumulator chains included), so for a given host path the
// result of every kernel is a pure function of its operands: parallel
// and serial runs are bit-identical, whatever the worker count. The asm
// and generic paths may round differently from each other; one path is
// chosen per process at init, which keeps any single run deterministic.

// f32UseASM is true when init (simd_amd64.go) found AVX2+FMA support.
var f32UseASM bool

// dot32 returns Σ a[i]*b[i] over len(a) elements (len(b) ≥ len(a)).
func dot32(a, b []float32) float32 {
	if f32UseASM && len(a) > 0 {
		return f32DotAVX2(&a[0], &b[0], len(a))
	}
	return f32DotGeneric(a, b)
}

// dot432 computes four dot products of a against b0..b3, sharing the
// a-row loads — the j-blocked inner kernel of the transposed-B matmul.
func dot432(a, b0, b1, b2, b3 []float32) (r0, r1, r2, r3 float32) {
	if f32UseASM && len(a) > 0 {
		return f32Dot4AVX2(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], len(a))
	}
	return f32Dot4Generic(a, b0, b1, b2, b3)
}

// axpy32 accumulates dst[i] += alpha*x[i] over len(dst) elements.
func axpy32(dst, x []float32, alpha float32) {
	if f32UseASM && len(dst) > 0 {
		f32AxpyAVX2(&dst[0], &x[0], alpha, len(dst))
		return
	}
	f32AxpyGeneric(dst, x, alpha)
}

// axpy432 accumulates dst[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i],
// the 4-wide k-blocked inner kernel of the row-major and transposed-A
// matmuls (one dst pass instead of four).
func axpy432(dst, x0, x1, x2, x3 []float32, a0, a1, a2, a3 float32) {
	if f32UseASM && len(dst) > 0 {
		f32Axpy4AVX2(&dst[0], &x0[0], &x1[0], &x2[0], &x3[0], a0, a1, a2, a3, len(dst))
		return
	}
	f32Axpy4Generic(dst, x0, x1, x2, x3, a0, a1, a2, a3)
}

// f32DotGeneric is the pure-Go dot: four accumulator chains for ILP,
// advancing both slice headers each iteration so every index in the
// unrolled body is provably in bounds — the loop compiles with zero
// bounds checks (the tail re-slice is the one per-call check).
func f32DotGeneric(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a = a[4:]
		b = b[4:]
	}
	s := (s0 + s1) + (s2 + s3)
	b = b[:len(a)]
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// f32Dot4Generic is the pure-Go 4-wide dot.
func f32Dot4Generic(a, b0, b1, b2, b3 []float32) (r0, r1, r2, r3 float32) {
	b0 = b0[:len(a)]
	b1 = b1[:len(a)]
	b2 = b2[:len(a)]
	b3 = b3[:len(a)]
	for i, av := range a {
		r0 += av * b0[i]
		r1 += av * b1[i]
		r2 += av * b2[i]
		r3 += av * b3[i]
	}
	return
}

// f32AxpyGeneric is the pure-Go axpy.
func f32AxpyGeneric(dst, x []float32, alpha float32) {
	x = x[:len(dst)]
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// f32Axpy4Generic is the pure-Go 4-wide axpy.
func f32Axpy4Generic(dst, x0, x1, x2, x3 []float32, a0, a1, a2, a3 float32) {
	x0 = x0[:len(dst)]
	x1 = x1[:len(dst)]
	x2 = x2[:len(dst)]
	x3 = x3[:len(dst)]
	for i := range dst {
		dst[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
	}
}

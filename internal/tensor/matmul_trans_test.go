package tensor

import (
	"testing"

	"fedclust/internal/rng"
)

// The transposed-operand kernels exist so layers can read W and gy in
// place. Their contract is strict: results must be BIT-identical to the
// materialize-the-transpose forms they replace, because the engine's
// golden equivalence suite pins float-bit fingerprints of whole training
// runs. Hence the == comparisons below, not tolerance checks.

func TestMatMulTransBBitExact(t *testing.T) {
	r := rng.New(3)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 1}, {17, 13, 11}, {64, 48, 32}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(r, m, k)
		b := randTensor(r, n, k)
		// Sparsify a so the skip-zero rule is exercised.
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}
		got := New(m, n)
		MatMulTransBInto(got, a, b)
		want := MatMul(a, Transpose(b))
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("dims %v: element %d = %v, want %v (not bit-exact)", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransABitExact(t *testing.T) {
	r := rng.New(4)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 2, 4}, {7, 5, 1}, {13, 17, 11}, {48, 64, 32}} {
		k, m, n := dims[0], dims[1], dims[2]
		a := randTensor(r, k, m)
		b := randTensor(r, k, n)
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}
		got := New(m, n)
		MatMulTransAInto(got, a, b)
		want := MatMul(Transpose(a), b)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("dims %v: element %d = %v, want %v (not bit-exact)", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransParallelPathBitExact(t *testing.T) {
	// Big enough that m*n*k crosses parallelThreshold in both kernels.
	r := rng.New(5)
	a := randTensor(r, 80, 70)
	b := randTensor(r, 60, 70)
	got := New(80, 60)
	MatMulTransBInto(got, a, b)
	want := MatMul(a, Transpose(b))
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("parallel MatMulTransB not bit-exact")
		}
	}
	at := randTensor(r, 70, 80)
	bt := randTensor(r, 70, 60)
	got2 := New(80, 60)
	MatMulTransAInto(got2, at, bt)
	want2 := MatMul(Transpose(at), bt)
	for i := range got2.Data {
		if got2.Data[i] != want2.Data[i] {
			t.Fatal("parallel MatMulTransA not bit-exact")
		}
	}
}

func TestMatMulTransShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"transB inner":     func() { MatMulTransBInto(New(2, 3), New(2, 4), New(3, 5)) },
		"transB dst":       func() { MatMulTransBInto(New(2, 2), New(2, 4), New(3, 4)) },
		"transA inner":     func() { MatMulTransAInto(New(2, 3), New(4, 2), New(5, 3)) },
		"transA dst":       func() { MatMulTransAInto(New(2, 2), New(4, 2), New(4, 3)) },
		"transB non-rank2": func() { MatMulTransBInto(New(2, 2), New(4), New(2, 4)) },
	} {
		func(name string, f func()) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: mismatched shapes did not panic", name)
				}
			}()
			f()
		}(name, f)
	}
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	r := rng.New(6)
	g := ConvGeom{InC: 2, InH: 5, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	img := randTensor(r, g.InC*g.InH*g.InW).Data
	cols := New(g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	Im2Col(img, g, cols)
	flat := make([]float64, len(cols.Data))
	Im2ColInto(img, g, flat)
	for i := range flat {
		if flat[i] != cols.Data[i] {
			t.Fatal("Im2ColInto disagrees with Im2Col")
		}
	}
	// Col2ImInto must match Col2Im on the adjoint direction.
	grad := randTensor(r, cols.Shape[0], cols.Shape[1])
	img1 := make([]float64, len(img))
	img2 := make([]float64, len(img))
	Col2Im(grad, g, img1)
	Col2ImInto(grad.Data, g, img2)
	for i := range img1 {
		if img1[i] != img2[i] {
			t.Fatal("Col2ImInto disagrees with Col2Im")
		}
	}
}

func TestIm2ColIntoLengthPanics(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	Im2ColInto(make([]float64, 16), g, make([]float64, 3))
}

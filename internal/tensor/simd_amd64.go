//go:build amd64

package tensor

// Runtime feature detection for the AVX2+FMA float32 kernels. The
// toolchain baseline (GOAMD64=v1) cannot assume AVX, so the assembly in
// simd_amd64.s is only dispatched after CPUID confirms AVX2 and FMA and
// XGETBV confirms the OS saves the YMM state. Everything here runs once
// at package init; the kernels read the resulting f32UseASM flag.

// cpuid executes CPUID with the given leaf and subleaf (implemented in
// simd_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (implemented in simd_amd64.s).
func xgetbv() (eax, edx uint32)

// The four float32 kernel primitives, AVX2+FMA implementations.
// n must be > 0 and every pointer must address at least n floats.

//go:noescape
func f32DotAVX2(a, b *float32, n int) float32

//go:noescape
func f32Dot4AVX2(a, b0, b1, b2, b3 *float32, n int) (r0, r1, r2, r3 float32)

//go:noescape
func f32AxpyAVX2(dst, x *float32, alpha float32, n int)

//go:noescape
func f32Axpy4AVX2(dst, x0, x1, x2, x3 *float32, a0, a1, a2, a3 float32, n int)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return
	}
	// OS must save XMM (bit 1) and YMM (bit 2) register state.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	if ebx7&avx2Bit == 0 {
		return
	}
	f32UseASM = true
}

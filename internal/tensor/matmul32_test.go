package tensor

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"fedclust/internal/rng"
)

func randSlice32(r *rng.Rng, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(r.NormFloat64())
	}
	return s
}

func relErr32(got, want float64) float64 {
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(got-want) / scale
}

// TestF32PrimitivesAsmVsGeneric checks that the AVX2 kernels agree with
// the pure-Go fallbacks to float32 rounding noise across lengths that
// exercise every main-loop/mid-loop/tail combination. Skipped when the
// host has no AVX2 path to compare.
func TestF32PrimitivesAsmVsGeneric(t *testing.T) {
	if !F32UseASM() {
		t.Skip("no AVX2+FMA kernel path on this host")
	}
	r := rng.New(7)
	for _, n := range []int{1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 100, 127, 128, 129, 1000} {
		a := randSlice32(r, n)
		b0, b1, b2, b3 := randSlice32(r, n), randSlice32(r, n), randSlice32(r, n), randSlice32(r, n)

		gotDot := float64(f32DotAVX2(&a[0], &b0[0], n))
		wantDot := float64(f32DotGeneric(a, b0))
		if relErr32(gotDot, wantDot) > 1e-4 {
			t.Errorf("dot n=%d: asm %g generic %g", n, gotDot, wantDot)
		}

		g0, g1, g2, g3 := f32Dot4AVX2(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n)
		w0, w1, w2, w3 := f32Dot4Generic(a, b0, b1, b2, b3)
		for j, pair := range [][2]float32{{g0, w0}, {g1, w1}, {g2, w2}, {g3, w3}} {
			if relErr32(float64(pair[0]), float64(pair[1])) > 1e-4 {
				t.Errorf("dot4 n=%d out=%d: asm %g generic %g", n, j, pair[0], pair[1])
			}
		}

		dstA := append([]float32(nil), b1...)
		dstG := append([]float32(nil), b1...)
		f32AxpyAVX2(&dstA[0], &a[0], 0.37, n)
		f32AxpyGeneric(dstG, a, 0.37)
		for i := range dstA {
			if relErr32(float64(dstA[i]), float64(dstG[i])) > 1e-4 {
				t.Fatalf("axpy n=%d i=%d: asm %g generic %g", n, i, dstA[i], dstG[i])
			}
		}

		dstA = append(dstA[:0], b0...)
		dstG = append(dstG[:0], b0...)
		f32Axpy4AVX2(&dstA[0], &a[0], &b1[0], &b2[0], &b3[0], 0.5, -1.25, 2, 0.125, n)
		f32Axpy4Generic(dstG, a, b1, b2, b3, 0.5, -1.25, 2, 0.125)
		for i := range dstA {
			if relErr32(float64(dstA[i]), float64(dstG[i])) > 1e-4 {
				t.Fatalf("axpy4 n=%d i=%d: asm %g generic %g", n, i, dstA[i], dstG[i])
			}
		}
	}
}

// matmul32Ref computes the reference product in float64 from float32
// operands for closeness checks.
func matmul32Ref(a, b *Tensor32, transA, transB bool) [][]float64 {
	var m, n, k int
	get := func(t *Tensor32, trans bool, i, p int) float64 {
		if trans {
			return float64(t.Data[p*t.Shape[1]+i])
		}
		return float64(t.Data[i*t.Shape[1]+p])
	}
	if transA {
		k, m = a.Shape[0], a.Shape[1]
	} else {
		m, k = a.Shape[0], a.Shape[1]
	}
	if transB {
		n = b.Shape[0]
	} else {
		n = b.Shape[1]
	}
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				av := get(a, transA, i, p)
				var bv float64
				if transB {
					bv = float64(b.Data[j*b.Shape[1]+p])
				} else {
					bv = float64(b.Data[p*b.Shape[1]+j])
				}
				s += av * bv
			}
			out[i][j] = s
		}
	}
	return out
}

func checkClose32(t *testing.T, name string, got *Tensor32, want [][]float64, k int) {
	t.Helper()
	// Float32 accumulation error grows with the summation length.
	tol := 1e-4 * math.Sqrt(float64(k))
	n := got.Shape[1]
	for i := range want {
		for j := range want[i] {
			if relErr32(float64(got.Data[i*n+j]), want[i][j]) > tol {
				t.Fatalf("%s [%d,%d]: got %g want %g", name, i, j, got.Data[i*n+j], want[i][j])
			}
		}
	}
}

// TestMatMul32Variants checks all three float32 matmul variants against
// a float64 reference across shapes that exercise the 4-wide blocking
// and its remainders, on both kernel paths.
func TestMatMul32Variants(t *testing.T) {
	paths := []bool{false}
	if F32UseASM() {
		paths = append(paths, true)
	}
	for _, useASM := range paths {
		t.Run(fmt.Sprintf("asm=%v", useASM), func(t *testing.T) {
			old := SetF32UseASM(useASM)
			defer SetF32UseASM(old)
			r := rng.New(11)
			shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {3, 5, 7}, {4, 4, 4}, {5, 9, 6}, {8, 8, 8}, {7, 13, 11}, {16, 10, 20}}
			for _, s := range shapes {
				m, k, n := s[0], s[1], s[2]
				a := FromSlice32(randSlice32(r, m*k), m, k)
				b := FromSlice32(randSlice32(r, k*n), k, n)
				dst := New32(m, n)
				MatMul32Into(dst, a, b)
				checkClose32(t, fmt.Sprintf("MatMul32 %v", s), dst, matmul32Ref(a, b, false, false), k)

				bt := FromSlice32(randSlice32(r, n*k), n, k)
				MatMulTransB32Into(dst, a, bt)
				checkClose32(t, fmt.Sprintf("MatMulTransB32 %v", s), dst, matmul32Ref(a, bt, false, true), k)

				at := FromSlice32(randSlice32(r, k*m), k, m)
				MatMulTransA32Into(dst, at, b)
				checkClose32(t, fmt.Sprintf("MatMulTransA32 %v", s), dst, matmul32Ref(at, b, true, false), k)
			}
		})
	}
}

// TestMatMul32ParallelBitIdentical checks the serial-fallback contract:
// a product large enough to take the parallel path must produce
// bit-identical results to the serial kernels.
func TestMatMul32ParallelBitIdentical(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2 for the parallel path")
	}
	r := rng.New(13)
	// m*n*k must clear parallelThreshold32.
	m, k, n := 64, 80, 64
	if m*n*k < parallelThreshold32 {
		t.Fatalf("test shape below parallelThreshold32")
	}
	a := FromSlice32(randSlice32(r, m*k), m, k)
	b := FromSlice32(randSlice32(r, k*n), k, n)

	serial := New32(m, n)
	matmul32Rows(serial, a, b, 0, m)
	par := New32(m, n)
	MatMul32Into(par, a, b)
	for i := range par.Data {
		if par.Data[i] != serial.Data[i] {
			t.Fatalf("MatMul32 parallel diverges at %d: %g vs %g", i, par.Data[i], serial.Data[i])
		}
	}

	bt := FromSlice32(randSlice32(r, n*k), n, k)
	matmulTransB32Rows(serial, a, bt, 0, m)
	MatMulTransB32Into(par, a, bt)
	for i := range par.Data {
		if par.Data[i] != serial.Data[i] {
			t.Fatalf("MatMulTransB32 parallel diverges at %d", i)
		}
	}

	at := FromSlice32(randSlice32(r, k*m), k, m)
	matmulTransA32Rows(serial, at, b, 0, m)
	MatMulTransA32Into(par, at, b)
	for i := range par.Data {
		if par.Data[i] != serial.Data[i] {
			t.Fatalf("MatMulTransA32 parallel diverges at %d", i)
		}
	}
}

// TestIm2Col32MatchesFloat64 checks the float32 im2col/col2im against
// the float64 forms bit-exactly (both are pure copies/sums of values
// that round-trip float32 exactly when sums stay small).
func TestIm2Col32MatchesFloat64(t *testing.T) {
	r := rng.New(17)
	g := ConvGeom{InC: 2, InH: 6, InW: 5, KH: 3, KW: 3, Stride: 2, Pad: 1}
	imgN := g.InC * g.InH * g.InW
	rowLen := g.InC * g.KH * g.KW
	colN := g.OutH() * g.OutW() * rowLen

	img32 := randSlice32(r, imgN)
	img64 := make([]float64, imgN)
	for i, v := range img32 {
		img64[i] = float64(v)
	}
	dst32 := make([]float32, colN)
	dst64 := make([]float64, colN)
	Im2Col32Into(img32, g, dst32)
	Im2ColInto(img64, g, dst64)
	for i := range dst32 {
		if float64(dst32[i]) != dst64[i] {
			t.Fatalf("Im2Col32 mismatch at %d: %g vs %g", i, dst32[i], dst64[i])
		}
	}

	grad32 := randSlice32(r, colN)
	grad64 := make([]float64, colN)
	for i, v := range grad32 {
		grad64[i] = float64(v)
	}
	out32 := make([]float32, imgN)
	out64 := make([]float64, imgN)
	Col2Im32Into(grad32, g, out32)
	Col2ImInto(grad64, g, out64)
	for i := range out32 {
		if relErr32(float64(out32[i]), out64[i]) > 1e-5 {
			t.Fatalf("Col2Im32 mismatch at %d: %g vs %g", i, out32[i], out64[i])
		}
	}
}

// TestTensor32Basics covers the Tensor32 helpers.
func TestTensor32Basics(t *testing.T) {
	a := New32(2, 3)
	if a.Size() != 6 || a.Rank() != 2 || a.Dim(1) != 3 {
		t.Fatalf("New32 metadata wrong: %v", a)
	}
	a.Fill(2)
	b := FromSlice32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	a.AddScaled(b, 0.5)
	want := []float32{2.5, 3, 3.5, 4, 4.5, 5}
	for i, v := range want {
		if a.Data[i] != v {
			t.Fatalf("AddScaled[%d] = %g, want %g", i, a.Data[i], v)
		}
	}
	c := a.Clone()
	c.Zero()
	if a.Data[0] != 2.5 {
		t.Fatal("Clone shares storage")
	}
	row := b.Row(1)
	if len(row) != 3 || row[0] != 4 {
		t.Fatalf("Row wrong: %v", row)
	}
	r := b.Reshape(3, 2)
	if &r.Data[0] != &b.Data[0] || r.Shape[0] != 3 {
		t.Fatal("Reshape must share storage with new shape")
	}
	if !a.SameShape(b) || a.SameShape(r) {
		t.Fatal("SameShape wrong")
	}
}

func benchMat32(b *testing.B, m, k, n int) (*Tensor32, *Tensor32, *Tensor32) {
	r := rng.New(3)
	a := FromSlice32(randSlice32(r, m*k), m, k)
	bb := FromSlice32(randSlice32(r, k*n), k, n)
	return New32(m, n), a, bb
}

func BenchmarkMatMul32(b *testing.B) {
	dst, x, y := benchMat32(b, 64, 128, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul32Into(dst, x, y)
	}
}

func BenchmarkMatMul64Ref(b *testing.B) {
	r := rng.New(3)
	m, k, n := 64, 128, 64
	a := New(m, k)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	bb := New(k, n)
	for i := range bb.Data {
		bb.Data[i] = r.NormFloat64()
	}
	dst := New(m, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, bb)
	}
}

func BenchmarkMatMulTransB32(b *testing.B) {
	r := rng.New(3)
	m, k, n := 64, 128, 64
	a := FromSlice32(randSlice32(r, m*k), m, k)
	bt := FromSlice32(randSlice32(r, n*k), n, k)
	dst := New32(m, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTransB32Into(dst, a, bt)
	}
}

func BenchmarkMatMulTransB64(b *testing.B) {
	r := rng.New(3)
	m, k, n := 64, 128, 64
	a := New(m, k)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	bt := New(n, k)
	for i := range bt.Data {
		bt.Data[i] = r.NormFloat64()
	}
	dst := New(m, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, a, bt)
	}
}

//go:build !amd64

package tensor

// Non-amd64 builds never set f32UseASM, so these stubs are unreachable;
// they exist only to satisfy the references in kernels32.go.

func f32DotAVX2(a, b *float32, n int) float32 {
	panic("tensor: f32DotAVX2 called without AVX2 support")
}

func f32Dot4AVX2(a, b0, b1, b2, b3 *float32, n int) (r0, r1, r2, r3 float32) {
	panic("tensor: f32Dot4AVX2 called without AVX2 support")
}

func f32AxpyAVX2(dst, x *float32, alpha float32, n int) {
	panic("tensor: f32AxpyAVX2 called without AVX2 support")
}

func f32Axpy4AVX2(dst, x0, x1, x2, x3 *float32, a0, a1, a2, a3 float32, n int) {
	panic("tensor: f32Axpy4AVX2 called without AVX2 support")
}

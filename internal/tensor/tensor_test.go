package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"fedclust/internal/rng"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(2, 3, 4)
	if a.Size() != 24 || a.Rank() != 3 || a.Dim(1) != 3 {
		t.Fatalf("bad metadata: size=%d rank=%d", a.Size(), a.Rank())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestFromSliceAndPanic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(1, 2) != 6 || a.At(0, 0) != 1 {
		t.Fatal("FromSlice layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2}, 3)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4, 5)
	a.Set(7.5, 2, 1, 3)
	if a.At(2, 1, 3) != 7.5 {
		t.Fatal("At/Set round trip failed")
	}
	// row-major: offset = (2*4+1)*5+3 = 48
	if a.Data[48] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestIndexBounds(t *testing.T) {
	a := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, 2}, {-1, 0}, {0, -1}} {
		func(idx []int) {
			defer func() {
				if recover() == nil {
					t.Fatalf("index %v did not panic", idx)
				}
			}()
			a.At(idx...)
		}(idx)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 1)
	if a.At(0, 1) != 42 {
		t.Fatal("Reshape should share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestRow(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 10
	if a.At(1, 0) != 10 {
		t.Fatal("Row should be a view")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b); got.Data[0] != 5 || got.Data[2] != 9 {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := Sub(b, a); got.Data[0] != 3 || got.Data[2] != 3 {
		t.Fatalf("Sub = %v", got.Data)
	}
	if got := Mul(a, b); got.Data[1] != 10 {
		t.Fatalf("Mul = %v", got.Data)
	}
	c := a.Clone()
	c.Scale(2)
	if c.Data[2] != 6 {
		t.Fatalf("Scale = %v", c.Data)
	}
	c.AddScaled(b, -1)
	if c.Data[0] != -2 {
		t.Fatalf("AddScaled = %v", c.Data)
	}
}

func TestOpsShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	Add(New(2), New(3))
}

func TestApplySumNormDot(t *testing.T) {
	a := FromSlice([]float64{-3, 4}, 2)
	if a.Norm() != 5 {
		t.Fatalf("Norm = %v", a.Norm())
	}
	if a.Sum() != 1 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	b := FromSlice([]float64{2, 1}, 2)
	if Dot(a, b) != -2 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	a.Apply(math.Abs)
	if a.Data[0] != 3 {
		t.Fatal("Apply failed")
	}
}

func TestEqualAndFillZero(t *testing.T) {
	a := New(2, 2)
	a.Fill(3)
	b := New(2, 2)
	b.Fill(3.0000001)
	if !Equal(a, b, 1e-5) {
		t.Fatal("Equal within tol failed")
	}
	if Equal(a, b, 1e-9) {
		t.Fatal("Equal beyond tol should fail")
	}
	if Equal(a, New(4).Reshape(2, 2).Reshape(4), 1) {
		t.Fatal("Equal with different shapes should fail")
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

// naiveMatMul is the reference implementation for property testing.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func randTensor(r *rng.Rng, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.NormFloat64()
	}
	return t
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 1, 7}, {17, 13, 11}, {64, 32, 48}} {
		a := randTensor(r, dims[0], dims[1])
		b := randTensor(r, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !Equal(got, want, 1e-9) {
			t.Fatalf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulParallelPathMatchesNaive(t *testing.T) {
	// Big enough to cross parallelThreshold.
	r := rng.New(2)
	a := randTensor(r, 80, 70)
	b := randTensor(r, 70, 60)
	if !Equal(MatMul(a, b), naiveMatMul(a, b), 1e-8) {
		t.Fatal("parallel MatMul mismatch")
	}
}

func TestMatMulProperty(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return Equal(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Shape[0] != 3 || at.Shape[1] != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose = %v %v", at.Shape, at.Data)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.Data[0] != -2 || y.Data[1] != -2 {
		t.Fatalf("MatVec = %v", y.Data)
	}
}

func TestOuterInto(t *testing.T) {
	dst := New(2, 3)
	OuterInto(dst, FromSlice([]float64{1, 2}, 2), FromSlice([]float64{3, 4, 5}, 3))
	want := FromSlice([]float64{3, 4, 5, 6, 8, 10}, 2, 3)
	if !Equal(dst, want, 1e-12) {
		t.Fatalf("OuterInto = %v", dst.Data)
	}
	// accumulates
	OuterInto(dst, FromSlice([]float64{1, 2}, 2), FromSlice([]float64{3, 4, 5}, 3))
	if dst.At(1, 2) != 20 {
		t.Fatal("OuterInto should accumulate")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity layout.
	g := ConvGeom{InC: 2, InH: 3, InW: 3, KH: 1, KW: 1, Stride: 1, Pad: 0}
	img := make([]float64, 18)
	for i := range img {
		img[i] = float64(i)
	}
	cols := New(9, 2)
	Im2Col(img, g, cols)
	// Row p should be [img[p], img[9+p]] for output pixel p.
	for p := 0; p < 9; p++ {
		if cols.At(p, 0) != float64(p) || cols.At(p, 1) != float64(9+p) {
			t.Fatalf("row %d = %v", p, cols.Row(p))
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	img := []float64{1, 2, 3, 4}
	cols := New(g.OutH()*g.OutW(), 9)
	Im2Col(img, g, cols)
	// Output (0,0): receptive field top-left; the first row/col are padding.
	row := cols.Row(0)
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i, v := range want {
		if row[i] != v {
			t.Fatalf("padded im2col row0 = %v, want %v", row, want)
		}
	}
}

func TestConvGeomOutDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 5, KW: 5, Stride: 1, Pad: 0}
	if g.OutH() != 28 || g.OutW() != 28 {
		t.Fatalf("OutH/OutW = %d/%d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 28, InW: 28, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if g2.OutH() != 14 || g2.OutW() != 14 {
		t.Fatalf("strided OutH/OutW = %d/%d", g2.OutH(), g2.OutW())
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> for all x, y — the defining property
	// of an adjoint, which is exactly what backprop requires.
	r := rng.New(3)
	g := ConvGeom{InC: 2, InH: 5, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := make([]float64, g.InC*g.InH*g.InW)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	rows, colsN := g.OutH()*g.OutW(), g.InC*g.KH*g.KW
	y := randTensor(r, rows, colsN)

	cols := New(rows, colsN)
	Im2Col(x, g, cols)
	lhs := Dot(cols, y)

	back := make([]float64, len(x))
	Col2Im(y, g, back)
	var rhs float64
	for i := range x {
		rhs += x[i] * back[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint property violated: %v vs %v", lhs, rhs)
	}
}

func TestConvGeomValidatePanics(t *testing.T) {
	bad := []ConvGeom{
		{InC: 0, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1},
		{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 0},
		{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, g := range bad {
		func(g ConvGeom) {
			defer func() {
				if recover() == nil {
					t.Fatalf("geometry %d did not panic: %+v", i, g)
				}
			}()
			g.Validate()
		}(g)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 64, 64)
	y := randTensor(r, 64, 64)
	out := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := rng.New(1)
	x := randTensor(r, 256, 256)
	y := randTensor(r, 256, 256)
	out := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 5, KW: 5, Stride: 1, Pad: 0}
	img := make([]float64, g.InC*g.InH*g.InW)
	cols := New(g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(img, g, cols)
	}
}

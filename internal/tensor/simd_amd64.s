//go:build amd64

#include "textflag.h"

// Float32 kernel primitives, AVX2+FMA. Dispatched only after the init in
// simd_amd64.go has verified CPU and OS support (f32UseASM). Every
// routine executes VZEROUPPER before returning so mixed AVX/SSE code in
// the caller pays no state-transition penalty.
//
// Summation order inside each routine is a fixed function of n, so the
// kernels are deterministic run-to-run and across worker counts.

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func f32DotAVX2(a, b *float32, n int) float32
//
// Four independent YMM accumulator chains hide FMA latency; 32 floats
// per main-loop iteration, then an 8-wide loop, then a scalar tail.
TEXT ·f32DotAVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $5, DX
	JZ   dot_mid
dot_loop32:
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  dot_loop32
dot_mid:
	ANDQ $31, CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   dot_reduce
dot_loop8:
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  dot_loop8
dot_reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $7, CX
	JZ   dot_done
dot_tail:
	VMOVSS (SI), X2
	VFMADD231SS (DI), X2, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dot_tail
dot_done:
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func f32Dot4AVX2(a, b0, b1, b2, b3 *float32, n int) (r0, r1, r2, r3 float32)
//
// Four dot products sharing the a-row loads: the j-blocked inner kernel
// of MatMulTransB32Into. One accumulator per output keeps the four FMA
// chains independent.
TEXT ·f32Dot4AVX2(SB), NOSPLIT, $0-64
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   dot4_reduce
dot4_loop8:
	VMOVUPS (SI), Y4
	VFMADD231PS (R8), Y4, Y0
	VFMADD231PS (R9), Y4, Y1
	VFMADD231PS (R10), Y4, Y2
	VFMADD231PS (R11), Y4, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ DX
	JNZ  dot4_loop8
dot4_reduce:
	VEXTRACTF128 $1, Y0, X4
	VADDPS X4, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VEXTRACTF128 $1, Y1, X4
	VADDPS X4, X1, X1
	VHADDPS X1, X1, X1
	VHADDPS X1, X1, X1
	VEXTRACTF128 $1, Y2, X4
	VADDPS X4, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VEXTRACTF128 $1, Y3, X4
	VADDPS X4, X3, X3
	VHADDPS X3, X3, X3
	VHADDPS X3, X3, X3
	ANDQ $7, CX
	JZ   dot4_done
dot4_tail:
	VMOVSS (SI), X4
	VFMADD231SS (R8), X4, X0
	VFMADD231SS (R9), X4, X1
	VFMADD231SS (R10), X4, X2
	VFMADD231SS (R11), X4, X3
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNZ  dot4_tail
dot4_done:
	VZEROUPPER
	MOVSS X0, r0+48(FP)
	MOVSS X1, r1+52(FP)
	MOVSS X2, r2+56(FP)
	MOVSS X3, r3+60(FP)
	RET

// func f32AxpyAVX2(dst, x *float32, alpha float32, n int)
//
// dst[i] += alpha*x[i]; 16 floats per main-loop iteration.
TEXT ·f32AxpyAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	VBROADCASTSS alpha+16(FP), Y0
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   axpy_mid
axpy_loop16:
	VMOVUPS (DI), Y1
	VMOVUPS 32(DI), Y2
	VFMADD231PS (SI), Y0, Y1
	VFMADD231PS 32(SI), Y0, Y2
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  axpy_loop16
axpy_mid:
	ANDQ $15, CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   axpy_tail_setup
	VMOVUPS (DI), Y1
	VFMADD231PS (SI), Y0, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
axpy_tail_setup:
	ANDQ $7, CX
	JZ   axpy_done
axpy_tail:
	VMOVSS (DI), X1
	VMOVSS (SI), X2
	VFMADD231SS X0, X2, X1
	VMOVSS X1, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  axpy_tail
axpy_done:
	VZEROUPPER
	RET

// func f32Axpy4AVX2(dst, x0, x1, x2, x3 *float32, a0, a1, a2, a3 float32, n int)
//
// dst[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i], accumulated in
// x0..x3 order per element (the scalar tail matches the packed loop).
// One dst read-modify-write pass for four source rows: the k-blocked
// inner kernel of MatMul32Into and MatMulTransA32Into.
TEXT ·f32Axpy4AVX2(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ x0+8(FP), R8
	MOVQ x1+16(FP), R9
	MOVQ x2+24(FP), R10
	MOVQ x3+32(FP), R11
	VBROADCASTSS a0+40(FP), Y0
	VBROADCASTSS a1+44(FP), Y1
	VBROADCASTSS a2+48(FP), Y2
	VBROADCASTSS a3+52(FP), Y3
	MOVQ n+56(FP), CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   axpy4_tail_setup
axpy4_loop8:
	VMOVUPS (DI), Y4
	VFMADD231PS (R8), Y0, Y4
	VFMADD231PS (R9), Y1, Y4
	VFMADD231PS (R10), Y2, Y4
	VFMADD231PS (R11), Y3, Y4
	VMOVUPS Y4, (DI)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, DI
	DECQ DX
	JNZ  axpy4_loop8
axpy4_tail_setup:
	ANDQ $7, CX
	JZ   axpy4_done
axpy4_tail:
	VMOVSS (DI), X4
	VMOVSS (R8), X5
	VFMADD231SS X0, X5, X4
	VMOVSS (R9), X5
	VFMADD231SS X1, X5, X4
	VMOVSS (R10), X5
	VFMADD231SS X2, X5, X4
	VMOVSS (R11), X5
	VFMADD231SS X3, X5, X4
	VMOVSS X4, (DI)
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	ADDQ $4, DI
	DECQ CX
	JNZ  axpy4_tail
axpy4_done:
	VZEROUPPER
	RET

package tensor

// SetF32UseASM overrides the float32 kernel dispatch for tests (forcing
// the generic path on AVX2 hosts and vice versa) and returns the
// previous value so callers can restore it.
func SetF32UseASM(v bool) bool {
	old := f32UseASM
	f32UseASM = v
	return old
}

// F32UseASM reports which float32 kernel path init selected.
func F32UseASM() bool { return f32UseASM }

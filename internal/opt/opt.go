// Package opt implements the optimizers used by the federated trainers:
// SGD with momentum and weight decay, the FedProx proximal term, and
// simple learning-rate schedules.
package opt

import (
	"fmt"

	"fedclust/internal/tensor"
)

// SGD is stochastic gradient descent with optional classical momentum and
// L2 weight decay. The zero value is unusable; construct with NewSGD.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    []*tensor.Tensor
}

// NewSGD constructs an SGD optimizer. lr must be positive; momentum and
// weightDecay must be non-negative (momentum < 1).
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	s := &SGD{}
	s.Reconfigure(lr, momentum, weightDecay)
	return s
}

// Reconfigure updates the hyper-parameters in place with NewSGD's
// validation, keeping any velocity buffers — reusable optimizer state is
// what lets a worker serve many client visits without reallocating.
func (s *SGD) Reconfigure(lr, momentum, weightDecay float64) {
	if lr <= 0 {
		panic(fmt.Sprintf("opt: learning rate must be positive, got %v", lr))
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("opt: momentum %v out of [0,1)", momentum))
	}
	if weightDecay < 0 {
		panic(fmt.Sprintf("opt: weight decay must be non-negative, got %v", weightDecay))
	}
	s.LR, s.Momentum, s.WeightDecay = lr, momentum, weightDecay
}

// Step applies one update to params given aligned grads:
//
//	v ← μ·v + (g + λ·w);  w ← w - η·v
//
// On first use it lazily allocates velocity buffers matching the params.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("opt: %d params but %d grads", len(params), len(grads)))
	}
	if s.Momentum > 0 && (s.velocity == nil || len(s.velocity) != len(params)) {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Shape...)
		}
	}
	for i, p := range params {
		g := grads[i]
		if !p.SameShape(g) {
			panic(fmt.Sprintf("opt: param %d shape %v != grad shape %v", i, p.Shape, g.Shape))
		}
		if s.Momentum > 0 {
			v := s.velocity[i]
			if !v.SameShape(p) {
				v = tensor.New(p.Shape...)
				s.velocity[i] = v
			}
			for j := range p.Data {
				eff := g.Data[j] + s.WeightDecay*p.Data[j]
				v.Data[j] = s.Momentum*v.Data[j] + eff
				p.Data[j] -= s.LR * v.Data[j]
			}
		} else {
			for j := range p.Data {
				eff := g.Data[j] + s.WeightDecay*p.Data[j]
				p.Data[j] -= s.LR * eff
			}
		}
	}
}

// Reset clears momentum state (used when a client restarts local training
// from freshly loaded global weights). The velocity buffers are zeroed in
// place rather than dropped, so a reset-and-reuse cycle allocates nothing
// and is bit-equivalent to a fresh optimizer.
func (s *SGD) Reset() {
	for _, v := range s.velocity {
		v.Zero()
	}
}

// AddProximal adds the FedProx proximal gradient μ·(w - w_ref) to grads,
// where ref is the flat global parameter vector the round started from.
// Layout must match the concatenation order of params.
func AddProximal(params, grads []*tensor.Tensor, ref []float64, mu float64) {
	if mu < 0 {
		panic(fmt.Sprintf("opt: proximal mu must be non-negative, got %v", mu))
	}
	if mu == 0 {
		return
	}
	off := 0
	for i, p := range params {
		g := grads[i]
		if off+p.Size() > len(ref) {
			panic(fmt.Sprintf("opt: proximal ref too short: need %d, have %d", off+p.Size(), len(ref)))
		}
		for j := range p.Data {
			g.Data[j] += mu * (p.Data[j] - ref[off+j])
		}
		off += p.Size()
	}
	if off != len(ref) {
		panic(fmt.Sprintf("opt: proximal ref length %d, params total %d", len(ref), off))
	}
}

// Schedule maps a round number to a learning rate.
type Schedule interface {
	LR(round int) float64
}

// ConstSchedule always returns the same rate.
type ConstSchedule float64

// LR implements Schedule.
func (c ConstSchedule) LR(round int) float64 { return float64(c) }

// DecaySchedule multiplies the base rate by Factor every Every rounds.
type DecaySchedule struct {
	Base   float64
	Factor float64
	Every  int
}

// LR implements Schedule.
func (d DecaySchedule) LR(round int) float64 {
	if d.Every <= 0 {
		return d.Base
	}
	lr := d.Base
	for i := d.Every; i <= round; i += d.Every {
		lr *= d.Factor
	}
	return lr
}

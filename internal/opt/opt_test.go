package opt

import (
	"math"
	"testing"

	"fedclust/internal/tensor"
)

func single(v float64) []*tensor.Tensor {
	t := tensor.New(1)
	t.Data[0] = v
	return []*tensor.Tensor{t}
}

func TestSGDPlainStep(t *testing.T) {
	s := NewSGD(0.1, 0, 0)
	p, g := single(1.0), single(2.0)
	s.Step(p, g)
	if got := p[0].Data[0]; math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("param after step = %v, want 0.8", got)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	s := NewSGD(0.1, 0, 0.5)
	p, g := single(2.0), single(0.0)
	s.Step(p, g)
	// effective grad = 0 + 0.5*2 = 1; p = 2 - 0.1 = 1.9
	if got := p[0].Data[0]; math.Abs(got-1.9) > 1e-12 {
		t.Fatalf("param after decay step = %v, want 1.9", got)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	s := NewSGD(1, 0.9, 0)
	p, g := single(0.0), single(1.0)
	s.Step(p, g) // v=1, p=-1
	s.Step(p, g) // v=1.9, p=-2.9
	if got := p[0].Data[0]; math.Abs(got-(-2.9)) > 1e-12 {
		t.Fatalf("param after two momentum steps = %v, want -2.9", got)
	}
	s.Reset()
	s.Step(p, g) // v starts over: v=1, p=-3.9
	if got := p[0].Data[0]; math.Abs(got-(-3.9)) > 1e-12 {
		t.Fatalf("param after reset = %v, want -3.9", got)
	}
}

func TestSGDQuadraticConvergence(t *testing.T) {
	// Minimize f(w) = (w-3)²; gradient 2(w-3).
	s := NewSGD(0.1, 0.5, 0)
	p := single(0.0)
	g := single(0.0)
	for i := 0; i < 200; i++ {
		g[0].Data[0] = 2 * (p[0].Data[0] - 3)
		s.Step(p, g)
	}
	if got := p[0].Data[0]; math.Abs(got-3) > 1e-6 {
		t.Fatalf("converged to %v, want 3", got)
	}
}

func TestSGDValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSGD(0, 0, 0) },
		func() { NewSGD(0.1, -0.1, 0) },
		func() { NewSGD(0.1, 1.0, 0) },
		func() { NewSGD(0.1, 0, -1) },
	} {
		func(f func()) {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid SGD config did not panic")
				}
			}()
			f()
		}(f)
	}
}

func TestSGDMismatchedShapesPanic(t *testing.T) {
	s := NewSGD(0.1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched param/grad did not panic")
		}
	}()
	s.Step([]*tensor.Tensor{tensor.New(2)}, []*tensor.Tensor{tensor.New(3)})
}

func TestAddProximal(t *testing.T) {
	p := []*tensor.Tensor{tensor.FromSlice([]float64{1, 2}, 2), tensor.FromSlice([]float64{5}, 1)}
	g := []*tensor.Tensor{tensor.New(2), tensor.New(1)}
	ref := []float64{0, 0, 3}
	AddProximal(p, g, ref, 0.5)
	// g = mu*(w - ref): [0.5, 1.0] and [1.0]
	if g[0].Data[0] != 0.5 || g[0].Data[1] != 1.0 || g[1].Data[0] != 1.0 {
		t.Fatalf("proximal grads = %v %v", g[0].Data, g[1].Data)
	}
}

func TestAddProximalMuZeroNoop(t *testing.T) {
	p := []*tensor.Tensor{tensor.FromSlice([]float64{1}, 1)}
	g := []*tensor.Tensor{tensor.New(1)}
	AddProximal(p, g, []float64{0}, 0)
	if g[0].Data[0] != 0 {
		t.Fatal("mu=0 should be a no-op")
	}
}

func TestAddProximalLengthPanics(t *testing.T) {
	p := []*tensor.Tensor{tensor.New(2)}
	g := []*tensor.Tensor{tensor.New(2)}
	defer func() {
		if recover() == nil {
			t.Fatal("short ref did not panic")
		}
	}()
	AddProximal(p, g, []float64{0}, 0.1)
}

func TestAddProximalPullsTowardRef(t *testing.T) {
	// Proximal term alone should pull w toward ref under SGD.
	s := NewSGD(0.1, 0, 0)
	p := []*tensor.Tensor{tensor.FromSlice([]float64{10}, 1)}
	g := []*tensor.Tensor{tensor.New(1)}
	ref := []float64{2}
	for i := 0; i < 500; i++ {
		g[0].Zero()
		AddProximal(p, g, ref, 1.0)
		s.Step(p, g)
	}
	if got := p[0].Data[0]; math.Abs(got-2) > 1e-6 {
		t.Fatalf("proximal pull converged to %v, want 2", got)
	}
}

func TestConstSchedule(t *testing.T) {
	s := ConstSchedule(0.05)
	if s.LR(0) != 0.05 || s.LR(100) != 0.05 {
		t.Fatal("ConstSchedule should be constant")
	}
}

func TestDecaySchedule(t *testing.T) {
	d := DecaySchedule{Base: 1, Factor: 0.5, Every: 10}
	if d.LR(0) != 1 || d.LR(9) != 1 {
		t.Fatal("no decay before first boundary")
	}
	if d.LR(10) != 0.5 || d.LR(19) != 0.5 {
		t.Fatalf("decay at boundary wrong: %v", d.LR(10))
	}
	if d.LR(20) != 0.25 {
		t.Fatalf("second decay wrong: %v", d.LR(20))
	}
	zero := DecaySchedule{Base: 2, Factor: 0.5, Every: 0}
	if zero.LR(50) != 2 {
		t.Fatal("Every=0 should disable decay")
	}
}

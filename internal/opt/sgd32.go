package opt

import (
	"fmt"

	"fedclust/internal/tensor"
)

// SGD32 is the float32 mirror of SGD: stochastic gradient descent with
// optional classical momentum and L2 weight decay over float32 tensors.
// Hyperparameters stay float64 (they come from the same LocalConfig as
// the float64 path) and are rounded once per Step, so a reconfigured
// optimizer behaves identically to a fresh one.
type SGD32 struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    []*tensor.Tensor32
}

// NewSGD32 constructs a float32 SGD optimizer with NewSGD's validation.
func NewSGD32(lr, momentum, weightDecay float64) *SGD32 {
	s := &SGD32{}
	s.Reconfigure(lr, momentum, weightDecay)
	return s
}

// Reconfigure updates the hyper-parameters in place, keeping any
// velocity buffers.
func (s *SGD32) Reconfigure(lr, momentum, weightDecay float64) {
	if lr <= 0 {
		panic(fmt.Sprintf("opt: learning rate must be positive, got %v", lr))
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("opt: momentum %v out of [0,1)", momentum))
	}
	if weightDecay < 0 {
		panic(fmt.Sprintf("opt: weight decay must be non-negative, got %v", weightDecay))
	}
	s.LR, s.Momentum, s.WeightDecay = lr, momentum, weightDecay
}

// Step applies one update to params given aligned grads:
//
//	v ← μ·v + (g + λ·w);  w ← w - η·v
//
// On first use it lazily allocates velocity buffers matching the params.
func (s *SGD32) Step(params, grads []*tensor.Tensor32) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("opt: %d params but %d grads", len(params), len(grads)))
	}
	if s.Momentum > 0 && (s.velocity == nil || len(s.velocity) != len(params)) {
		s.velocity = make([]*tensor.Tensor32, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New32(p.Shape...)
		}
	}
	lr := float32(s.LR)
	mom := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for i, p := range params {
		g := grads[i]
		if !p.SameShape(g) {
			panic(fmt.Sprintf("opt: param %d shape %v != grad shape %v", i, p.Shape, g.Shape))
		}
		if s.Momentum > 0 {
			v := s.velocity[i]
			if !v.SameShape(p) {
				v = tensor.New32(p.Shape...)
				s.velocity[i] = v
			}
			for j := range p.Data {
				eff := g.Data[j] + wd*p.Data[j]
				v.Data[j] = mom*v.Data[j] + eff
				p.Data[j] -= lr * v.Data[j]
			}
		} else {
			for j := range p.Data {
				eff := g.Data[j] + wd*p.Data[j]
				p.Data[j] -= lr * eff
			}
		}
	}
}

// Reset zeroes momentum state in place, so a reset-and-reuse cycle
// allocates nothing and is bit-equivalent to a fresh optimizer.
func (s *SGD32) Reset() {
	for _, v := range s.velocity {
		v.Zero()
	}
}

// AddProximal32 adds the FedProx proximal gradient μ·(w - w_ref) to
// grads, mirroring AddProximal with a float32 reference vector.
func AddProximal32(params, grads []*tensor.Tensor32, ref []float32, mu float64) {
	if mu < 0 {
		panic(fmt.Sprintf("opt: proximal mu must be non-negative, got %v", mu))
	}
	if mu == 0 {
		return
	}
	mu32 := float32(mu)
	off := 0
	for i, p := range params {
		g := grads[i]
		if off+p.Size() > len(ref) {
			panic(fmt.Sprintf("opt: proximal ref too short: need %d, have %d", off+p.Size(), len(ref)))
		}
		for j := range p.Data {
			g.Data[j] += mu32 * (p.Data[j] - ref[off+j])
		}
		off += p.Size()
	}
	if off != len(ref) {
		panic(fmt.Sprintf("opt: proximal ref length %d, params total %d", len(ref), off))
	}
}

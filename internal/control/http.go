package control

import (
	"encoding/json"
	"net"
	"net/http"
	"time"
)

// Server is the control plane's HTTP listener. Endpoints:
//
//	GET  /status      — Status snapshot (round progress, traffic, eval)
//	GET  /clients     — per-client outcome counts
//	GET  /stragglers  — done-epoch and lag histograms
//	POST /checkpoint  — arm the on-demand checkpoint trigger
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port) and serves the tracker's
// state until Close.
func Serve(addr string, t *Tracker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Status())
	})
	mux.HandleFunc("/clients", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Clients())
	})
	mux.HandleFunc("/stragglers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Stragglers())
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		t.RequestCheckpoint()
		writeJSON(w, map[string]bool{"armed": true})
	})
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client hangup mid-write
}

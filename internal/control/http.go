package control

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"fedclust/internal/obs"
	"fedclust/internal/sched"
)

// Server is the control plane's HTTP listener. Endpoints:
//
//	GET  /             — endpoint index
//	GET  /status       — Status snapshot (round progress, traffic, eval,
//	                     per-phase wall-time rollups)
//	GET  /clients      — per-client outcome counts
//	GET  /stragglers   — done-epoch and lag histograms
//	GET  /metrics      — Prometheus text exposition of the process registry
//	GET  /debug/pprof/ — net/http/pprof profiling handlers
//	POST /checkpoint   — arm the on-demand checkpoint trigger
//
// Read endpoints enforce GET (405 JSON otherwise), unknown paths return
// 404 JSON, and the server carries read/write timeouts sized so a
// 30-second pprof CPU profile still fits.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port) and serves the tracker's
// state until Close. Starting the server turns the process-wide
// telemetry gate on — a coordinator that exposes /metrics is one that
// wants the engine, transport, and scheduler collecting.
func Serve(addr string, t *Tracker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	obs.Enable()
	registerRuntimeMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			jsonError(w, http.StatusNotFound, "unknown path")
			return
		}
		if !requireGet(w, r) {
			return
		}
		writeJSON(w, map[string]string{
			"status":     "GET run progress snapshot",
			"clients":    "GET per-client outcome counts",
			"stragglers": "GET done-epoch and lag histograms",
			"metrics":    "GET Prometheus text exposition",
			"checkpoint": "POST arm on-demand checkpoint",
			"pprof":      "GET /debug/pprof/",
		})
	})
	mux.HandleFunc("/status", getJSON(func() any { return t.Status() }))
	mux.HandleFunc("/clients", getJSON(func() any { return t.Clients() }))
	mux.HandleFunc("/stragglers", getJSON(func() any { return t.Stragglers() }))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w) //nolint:errcheck // client hangup mid-scrape
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			jsonError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		t.RequestCheckpoint()
		writeJSON(w, map[string]bool{"armed": true})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		// WriteTimeout bounds a stuck client without cutting off
		// /debug/pprof/profile?seconds=30 (or a 60s trace) mid-stream.
		WriteTimeout: 2 * time.Minute,
	}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// registerRuntimeMetrics wires the pull-based collectors — process
// health and the default scheduler pool's counters — into the process
// registry. Idempotent across Serve calls.
var runtimeMetricsOnce sync.Once

func registerRuntimeMetrics() {
	runtimeMetricsOnce.Do(func() {
		r := obs.Default()
		obs.RegisterProcessMetrics(r)
		pool := sched.Default()
		r.CounterFunc("fedsim_sched_regions_total", "",
			"Parallel executor regions run to completion.",
			func() uint64 { return pool.Stats().Regions })
		r.CounterFunc("fedsim_sched_serial_total", "",
			"Executor submissions that ran inline on the caller.",
			func() uint64 { return pool.Stats().Serial })
		r.CounterFunc("fedsim_sched_items_total", "",
			"Work items executed by the shared executor.",
			func() uint64 { return pool.Stats().Items })
		r.GaugeFunc("fedsim_sched_workers", "",
			"Persistent executor worker goroutines spawned.",
			func() float64 { return float64(pool.Stats().Workers) })
	})
}

// requireGet enforces GET/HEAD on a read endpoint.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		jsonError(w, http.StatusMethodNotAllowed, "GET only")
		return false
	}
	return true
}

// getJSON wraps a snapshot function as a GET-only JSON endpoint.
func getJSON(fn func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		writeJSON(w, fn())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client hangup mid-write
}

func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"error": msg,
		"code":  code,
	})
}

// Package control is the coordinator's live control plane: a Tracker
// that implements fl.RoundObserver to mirror a running federation's
// progress into mutex-guarded counters, and a small HTTP server exposing
// them — round progress, per-client outcome counts, measured vs.
// estimated traffic, straggler histograms — plus an on-demand checkpoint
// trigger wired into the engine's CheckpointPlan.
package control

import (
	"sync"
	"sync/atomic"

	"fedclust/internal/fl"
)

// ClientCounts tallies one client's per-round outcomes over the run.
type ClientCounts struct {
	// OnTime counts rounds where the client delivered its full pass by
	// the deadline; Partial rounds with a straggler's shortened pass;
	// Late rounds whose update arrives lag > 0 rounds later; Offline
	// rounds with nothing (dropout or never invited to report); Failed
	// rounds lost to the transport (timeout, disconnect).
	OnTime  int `json:"on_time"`
	Partial int `json:"partial"`
	Late    int `json:"late"`
	Offline int `json:"offline"`
	Failed  int `json:"failed"`
}

// Status is the /status snapshot.
type Status struct {
	Method      string `json:"method"`
	Running     bool   `json:"running"`
	Round       int    `json:"round"` // completed rounds
	TotalRounds int    `json:"total_rounds"`
	StartRound  int    `json:"start_round"` // > 0: resumed from a checkpoint
	NClients    int    `json:"n_clients"`
	Invited     int    `json:"invited"`  // last round's invited count
	Reported    int    `json:"reported"` // last round's on-time reports

	// Traffic splits the cumulative ledger: Estimated* is the scalar-count
	// model for in-process clients, Measured* actual framed bytes off the
	// transport.
	UpBytes       int64 `json:"up_bytes"`
	DownBytes     int64 `json:"down_bytes"`
	MeasuredUp    int64 `json:"measured_up_bytes"`
	MeasuredDown  int64 `json:"measured_down_bytes"`
	EstimatedUp   int64 `json:"estimated_up_bytes"`
	EstimatedDown int64 `json:"estimated_down_bytes"`

	// EvalRound/MeanAcc/MeanLoss are the latest recorded evaluation.
	EvalRound int     `json:"eval_round"`
	MeanAcc   float64 `json:"mean_acc"`
	MeanLoss  float64 `json:"mean_loss"`

	Checkpoints int `json:"checkpoints"` // snapshots emitted so far

	// Aborted is true when the run ended before its configured total
	// rounds (error, panic, or operator abort) — Running is false either
	// way once the engine reports the run's end.
	Aborted bool `json:"aborted"`

	// LastPhases is the most recent round's wall-clock phase breakdown;
	// PhaseTotals accumulates the whole run. Zero until the engine reports
	// phase timing (it always does when a tracker observes the run).
	LastPhases  fl.RoundPhases `json:"last_phases"`
	PhaseTotals fl.RoundPhases `json:"phase_totals"`

	// Defense counters from the robust-aggregation layer (hostile-world
	// runs): Masked* counts uplinks dropped for non-finite values,
	// Suspects* the inputs the robust aggregator excluded from its
	// combines. Last* is the most recent round, Total* the whole run.
	MaskedLast    int `json:"masked_last"`
	MaskedTotal   int `json:"masked_total"`
	SuspectsLast  int `json:"suspects_last"`
	SuspectsTotal int `json:"suspects_total"`
}

// Stragglers is the /stragglers histogram snapshot.
type Stragglers struct {
	// DoneEpochs[k] counts client-rounds that completed exactly k epochs
	// by the deadline (index 0 = dropped out).
	DoneEpochs []int `json:"done_epochs"`
	// Lag[k] counts client-rounds whose update arrived k rounds late
	// (index 0 = on time; offline rounds are excluded).
	Lag []int `json:"lag"`
	// Offline counts client-rounds with no delivery at all.
	Offline int `json:"offline"`
}

// Tracker mirrors a run's progress. It implements fl.RoundObserver; all
// methods and snapshots are safe for concurrent use (the driver writes
// between phases, HTTP handlers read whenever).
type Tracker struct {
	mu      sync.Mutex
	epochs  int
	status  Status
	clients []ClientCounts
	done    []int
	lag     []int
	offline int
	trigger atomic.Bool
}

// NewTracker returns an empty tracker. localEpochs is the configured
// full local pass (Env.Local.Epochs): an on-time delivery with fewer
// completed epochs is classified as a straggler's partial pass. 0
// disables the partial classification.
func NewTracker(localEpochs int) *Tracker { return &Tracker{epochs: localEpochs} }

// ObserveRunStart implements fl.RoundObserver.
func (t *Tracker) ObserveRunStart(method string, totalRounds, nClients, startRound int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.status = Status{
		Method: method, Running: true,
		Round: startRound, TotalRounds: totalRounds,
		StartRound: startRound, NClients: nClients,
		EvalRound: -1,
	}
	t.clients = make([]ClientCounts, nClients)
	t.done, t.lag, t.offline = nil, nil, 0
	// A trigger armed near the end of a previous run on this tracker must
	// not fire a spurious snapshot on round 1 of this one.
	t.trigger.Store(false)
}

// ObserveRunEnd implements fl.RunEndObserver: the engine reports the
// run's end from every exit path, so an aborted run never shows
// running:true forever.
func (t *Tracker) ObserveRunEnd(completed int, aborted bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.status.Running = false
	t.status.Round = completed
	t.status.Aborted = aborted
}

// ObservePhases implements fl.PhaseObserver, rolling each round's
// wall-clock breakdown into the /status snapshot.
func (t *Tracker) ObservePhases(round int, phases fl.RoundPhases) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.status.LastPhases = phases
	t.status.PhaseTotals.Add(phases)
}

// ObserveRoundStart implements fl.RoundObserver.
func (t *Tracker) ObserveRoundStart(round, invited int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.status.Invited = invited
}

// ObserveOutcome implements fl.RoundObserver.
func (t *Tracker) ObserveOutcome(client, done, lag int, failed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if client < 0 || client >= len(t.clients) {
		return
	}
	c := &t.clients[client]
	switch {
	case failed:
		c.Failed++
	case lag < 0 || done <= 0:
		c.Offline++
	case lag > 0:
		c.Late++
	case t.epochs > 0 && done < t.epochs:
		c.Partial++
	default:
		c.OnTime++
	}
	if failed || lag < 0 || done <= 0 {
		t.offline++
	} else {
		t.lag = grow(t.lag, lag)
		t.lag[lag]++
	}
	if done < 0 {
		done = 0
	}
	t.done = grow(t.done, done)
	t.done[done]++
}

// ObserveRoundEnd implements fl.RoundObserver.
func (t *Tracker) ObserveRoundEnd(round, reported int, comm *fl.CommStats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.status
	s.Round = round + 1
	s.Reported = reported
	s.UpBytes, s.DownBytes = comm.UpBytes, comm.DownBytes
	s.MeasuredUp, s.MeasuredDown = comm.MeasuredUp, comm.MeasuredDown
	s.EstimatedUp = comm.UpBytes - comm.MeasuredUp
	s.EstimatedDown = comm.DownBytes - comm.MeasuredDown
	if s.Round == s.TotalRounds {
		s.Running = false
	}
}

// ObserveDefense implements fl.DefenseObserver: the engine reports each
// round's defensive tallies before ObserveRoundEnd.
func (t *Tracker) ObserveDefense(round, masked, suspects int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.status
	s.MaskedLast, s.SuspectsLast = masked, suspects
	s.MaskedTotal += masked
	s.SuspectsTotal += suspects
}

// ObserveEval implements fl.RoundObserver.
func (t *Tracker) ObserveEval(round int, meanAcc, meanLoss float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.status.EvalRound = round
	t.status.MeanAcc, t.status.MeanLoss = meanAcc, meanLoss
}

// ObserveCheckpoint implements fl.RoundObserver.
func (t *Tracker) ObserveCheckpoint(round int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.status.Checkpoints++
}

// Status returns a copy of the current /status snapshot.
func (t *Tracker) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Clients returns a copy of the per-client outcome counts.
func (t *Tracker) Clients() []ClientCounts {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]ClientCounts(nil), t.clients...)
}

// Stragglers returns a copy of the outcome histograms.
func (t *Tracker) Stragglers() Stragglers {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stragglers{
		DoneEpochs: append([]int(nil), t.done...),
		Lag:        append([]int(nil), t.lag...),
		Offline:    t.offline,
	}
}

// RequestCheckpoint arms the on-demand checkpoint trigger; the next
// completed round emits a snapshot.
func (t *Tracker) RequestCheckpoint() { t.trigger.Store(true) }

// TakeTrigger consumes the armed trigger — wire it as the environment's
// CheckpointPlan.Trigger.
func (t *Tracker) TakeTrigger() bool { return t.trigger.Swap(false) }

func grow(s []int, idx int) []int {
	for len(s) <= idx {
		s = append(s, 0)
	}
	return s
}

var _ fl.RoundObserver = (*Tracker)(nil)
var _ fl.DefenseObserver = (*Tracker)(nil)
var _ fl.PhaseObserver = (*Tracker)(nil)
var _ fl.RunEndObserver = (*Tracker)(nil)

package control_test

// Control-plane tests: the Tracker's observer → snapshot bookkeeping
// (outcome classification, traffic split, straggler histograms) and the
// HTTP surface over real sockets — GET endpoints serving live JSON and
// POST /checkpoint arming the engine-facing trigger exactly once.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"fedclust/internal/control"
	"fedclust/internal/fl"
)

// observeRun feeds the tracker a small fabricated run: 3 clients, 2
// rounds, one of everything (on-time, partial, late, offline, failure).
func observeRun(tr *control.Tracker) {
	tr.ObserveRunStart("FedAvg", 4, 3, 2) // resumed at round 2 of 4
	tr.ObserveRoundStart(2, 3)
	tr.ObserveOutcome(0, 2, 0, false) // full pass, on time
	tr.ObserveOutcome(1, 1, 0, false) // straggler: 1 of 2 epochs
	tr.ObserveOutcome(2, 2, 0, true)  // transport failure
	tr.ObserveRoundEnd(2, 2, &fl.CommStats{UpBytes: 100, DownBytes: 200, MeasuredUp: 60, MeasuredDown: 120})
	tr.ObserveEval(2, 0.5, 1.25)
	tr.ObserveRoundStart(3, 3)
	tr.ObserveOutcome(0, 2, 1, false)  // late by one round
	tr.ObserveOutcome(1, 0, -1, false) // offline
	tr.ObserveOutcome(2, 2, 0, false)
	tr.ObserveRoundEnd(3, 3, &fl.CommStats{UpBytes: 300, DownBytes: 400, MeasuredUp: 180, MeasuredDown: 240})
	tr.ObserveCheckpoint(4)
}

func TestTrackerClassifiesOutcomes(t *testing.T) {
	tr := control.NewTracker(2)
	observeRun(tr)

	s := tr.Status()
	if s.Method != "FedAvg" || s.Round != 4 || s.TotalRounds != 4 || s.StartRound != 2 {
		t.Errorf("round progress: %+v", s)
	}
	if s.Running {
		t.Error("final round completed but still running")
	}
	if s.UpBytes != 300 || s.MeasuredUp != 180 || s.EstimatedUp != 120 ||
		s.DownBytes != 400 || s.MeasuredDown != 240 || s.EstimatedDown != 160 {
		t.Errorf("traffic split: %+v", s)
	}
	if s.EvalRound != 2 || s.MeanAcc != 0.5 || s.MeanLoss != 1.25 {
		t.Errorf("eval snapshot: %+v", s)
	}
	if s.Checkpoints != 1 {
		t.Errorf("checkpoints: %d", s.Checkpoints)
	}

	c := tr.Clients()
	want := []control.ClientCounts{
		{OnTime: 1, Late: 1},
		{Partial: 1, Offline: 1},
		{OnTime: 1, Failed: 1},
	}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("client %d: got %+v want %+v", i, c[i], want[i])
		}
	}

	h := tr.Stragglers()
	// Lag histogram covers delivered updates only: 3 on-time (client 0
	// r2, client 2 r3, plus partial client 1 r2), 1 late by one.
	if len(h.Lag) != 2 || h.Lag[0] != 3 || h.Lag[1] != 1 {
		t.Errorf("lag histogram: %v", h.Lag)
	}
	if h.Offline != 2 { // one failure + one dropout
		t.Errorf("offline count: %d", h.Offline)
	}
	// Done-epoch histogram: client 1's partial pass completed 1 epoch,
	// four full passes completed 2, one offline completed 0 — the failed
	// round still counts its completed epochs (the work happened, the
	// update was lost).
	if len(h.DoneEpochs) != 3 || h.DoneEpochs[0] != 1 || h.DoneEpochs[1] != 1 || h.DoneEpochs[2] != 4 {
		t.Errorf("done-epoch histogram: %v", h.DoneEpochs)
	}
}

func TestTrackerTrigger(t *testing.T) {
	tr := control.NewTracker(0)
	if tr.TakeTrigger() {
		t.Fatal("fresh tracker has an armed trigger")
	}
	tr.RequestCheckpoint()
	if !tr.TakeTrigger() {
		t.Fatal("armed trigger not taken")
	}
	if tr.TakeTrigger() {
		t.Fatal("trigger fired twice off one request")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	tr := control.NewTracker(2)
	observeRun(tr)
	srv, err := control.Serve("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s content type %q", path, ct)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s decode: %v", path, err)
		}
	}

	var s control.Status
	getJSON("/status", &s)
	if s.Method != "FedAvg" || s.Round != 4 || s.MeasuredUp != 180 {
		t.Errorf("/status: %+v", s)
	}
	var clients []control.ClientCounts
	getJSON("/clients", &clients)
	if len(clients) != 3 || clients[0].OnTime != 1 {
		t.Errorf("/clients: %+v", clients)
	}
	var h control.Stragglers
	getJSON("/stragglers", &h)
	if h.Offline != 2 {
		t.Errorf("/stragglers: %+v", h)
	}

	// POST /checkpoint arms the trigger; GET must be refused.
	resp, err := http.Get(base + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /checkpoint: %s, want 405", resp.Status)
	}
	if tr.TakeTrigger() {
		t.Fatal("rejected GET armed the trigger")
	}
	resp, err = http.Post(base+"/checkpoint", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	var armed map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&armed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !armed["armed"] || !tr.TakeTrigger() {
		t.Fatalf("POST /checkpoint did not arm the trigger (%v)", armed)
	}
}

// TestTrackerIsARoundObserver pins the interface wiring the cmd layer
// relies on (env.Observer = tracker).
func TestTrackerIsARoundObserver(t *testing.T) {
	var obs fl.RoundObserver = control.NewTracker(1)
	if fmt.Sprintf("%T", obs) != "*control.Tracker" {
		t.Fatalf("unexpected observer type %T", obs)
	}
}

package control_test

// PR 10 observability tests: the run-end lifecycle and trigger-clearing
// regressions, the hardened HTTP surface (method enforcement, JSON 404s,
// /metrics exposition, pprof handlers), and the flagship concurrency
// check — scraping /metrics, /status, and the journal flush while a real
// multi-round run is training (run under -race in CI).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"fedclust/internal/control"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/obs"
	"fedclust/internal/rng"
)

// TestTrackerRunStartClearsTrigger: a POST /checkpoint armed at the end
// of one run must not fire a spurious snapshot on round 1 of the next
// run sharing the tracker.
func TestTrackerRunStartClearsTrigger(t *testing.T) {
	tr := control.NewTracker(2)
	tr.RequestCheckpoint()
	tr.ObserveRunStart("FedAvg", 4, 3, 0)
	if tr.TakeTrigger() {
		t.Fatal("stale checkpoint trigger survived into the next run")
	}
}

// TestTrackerRunEndAbort: an aborted run must stop reporting
// running:true — the explicit run-end observation flips the lifecycle
// regardless of how far the round counter got.
func TestTrackerRunEndAbort(t *testing.T) {
	tr := control.NewTracker(2)
	tr.ObserveRunStart("FedAvg", 10, 3, 0)
	tr.ObserveRoundStart(0, 3)
	tr.ObserveRoundEnd(0, 3, &fl.CommStats{})
	if s := tr.Status(); !s.Running {
		t.Fatal("mid-run tracker not running")
	}
	tr.ObserveRunEnd(1, true)
	s := tr.Status()
	if s.Running {
		t.Error("aborted run still reports running")
	}
	if !s.Aborted || s.Round != 1 {
		t.Errorf("abort snapshot: %+v", s)
	}
	// A clean completion reports aborted:false.
	tr.ObserveRunStart("FedAvg", 2, 3, 0)
	tr.ObserveRunEnd(2, false)
	if s := tr.Status(); s.Running || s.Aborted {
		t.Errorf("completed snapshot: %+v", s)
	}
}

// TestTrackerPhases: phase observations surface in /status as the last
// round's breakdown plus a running total.
func TestTrackerPhases(t *testing.T) {
	tr := control.NewTracker(2)
	tr.ObserveRunStart("FedAvg", 2, 3, 0)
	tr.ObservePhases(0, fl.RoundPhases{LocalNS: 100, TotalNS: 120})
	tr.ObservePhases(1, fl.RoundPhases{LocalNS: 50, TotalNS: 60})
	s := tr.Status()
	if s.LastPhases.LocalNS != 50 || s.LastPhases.TotalNS != 60 {
		t.Errorf("last phases: %+v", s.LastPhases)
	}
	if s.PhaseTotals.LocalNS != 150 || s.PhaseTotals.TotalNS != 180 {
		t.Errorf("phase totals: %+v", s.PhaseTotals)
	}
	// A new run resets both.
	tr.ObserveRunStart("FedProx", 2, 3, 0)
	if s := tr.Status(); s.PhaseTotals.TotalNS != 0 || s.LastPhases.TotalNS != 0 {
		t.Errorf("phases survived a run start: %+v", s)
	}
}

// TestHTTPHardening: read endpoints refuse non-GET, unknown paths get a
// JSON 404, /metrics serves the exposition content type, and the pprof
// handlers answer.
func TestHTTPHardening(t *testing.T) {
	tr := control.NewTracker(2)
	observeRun(tr)
	srv, err := control.Serve("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	expectJSONError := func(resp *http.Response, wantCode int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("%s %s: got %s, want %d", resp.Request.Method, resp.Request.URL.Path, resp.Status, wantCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s error content type %q, want application/json", resp.Request.URL.Path, ct)
		}
		var e struct {
			Error string `json:"error"`
			Code  int    `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Errorf("%s error body not JSON: %v", resp.Request.URL.Path, err)
		} else if e.Code != wantCode || e.Error == "" {
			t.Errorf("%s error body: %+v", resp.Request.URL.Path, e)
		}
	}

	// Non-GET on every read endpoint → 405 JSON.
	for _, path := range []string{"/status", "/clients", "/stragglers", "/metrics"} {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		expectJSONError(resp, http.StatusMethodNotAllowed)
	}
	// Unknown path → 404 JSON, not the default HTML page.
	resp, err := http.Get(base + "/no/such/endpoint")
	if err != nil {
		t.Fatal(err)
	}
	expectJSONError(resp, http.StatusNotFound)

	// /metrics speaks the text exposition format.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !bytes.Contains(body, []byte("# TYPE ")) || !bytes.Contains(body, []byte("go_goroutines")) {
		t.Errorf("/metrics exposition incomplete:\n%s", body)
	}
	if !bytes.Contains(body, []byte("fedsim_sched_")) {
		t.Errorf("/metrics missing scheduler pull metrics:\n%s", body)
	}

	// pprof is mounted.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline: %s", resp.Status)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the journal writes from
// the driver goroutine while the test goroutine later reads the bytes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// smallEnv is a 6-client, 6-round workload small enough for a -race run.
func smallEnv(seed uint64) *fl.Env {
	cfg := data.SynthConfig{
		Name: "ctl4", C: 1, H: 8, W: 8, Classes: 4,
		TrainPerClass: 24, TestPerClass: 8,
		ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
	}
	train, test := data.Generate(cfg)
	clients, _ := fl.BuildGroupClients(train, test,
		[][]int{{0, 1}, {2, 3}}, []int{3, 3}, rng.New(seed))
	return &fl.Env{
		Clients:   clients,
		Factory:   func(fr *rng.Rng) *nn.Sequential { return nn.MLP(fr, 64, 16, 4) },
		Rounds:    6,
		Local:     fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9},
		Seed:      seed,
		EvalEvery: 2,
		Workers:   3,
	}
}

// TestConcurrentScrapeWhileTraining is the flagship -race check: a real
// multi-round FedAvg run with the tracker and journal attached while
// scrapers hammer /metrics, /status, /clients, and /stragglers. After
// the run, the journal must reconcile with the control plane's snapshot.
func TestConcurrentScrapeWhileTraining(t *testing.T) {
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)

	tr := control.NewTracker(2)
	sink := &syncBuffer{}
	journal := obs.NewJournal(sink, 2)

	srv, err := control.Serve("127.0.0.1:0", tr) // enables the telemetry gate
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	env := smallEnv(77)
	env.Observer = fl.MultiObserver(tr, journal)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/status", "/clients", "/stragglers"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %s", path, resp.Status)
					return
				}
			}
		}(path)
	}

	res := methods.FedAvg{}.Run(env)
	close(done)
	wg.Wait()

	s := tr.Status()
	if s.Running || s.Aborted || s.Round != env.Rounds {
		t.Errorf("post-run status: %+v", s)
	}
	if journal.Err() != nil {
		t.Fatalf("journal: %v", journal.Err())
	}
	events, err := obs.ReadEvents(bytes.NewReader(sink.bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rounds, lastUp, lastDown int64
	var sawEnd bool
	for _, ev := range events {
		switch ev.Event {
		case "round":
			rounds++
			lastUp, lastDown = ev.UpBytes, ev.DownBytes
			if ev.Phases.TotalNS <= 0 {
				t.Errorf("round %d recorded no phase time: %+v", ev.Round, ev.Phases)
			}
		case "run_end":
			sawEnd = true
			if ev.Completed != env.Rounds || ev.Aborted {
				t.Errorf("run_end: %+v", ev)
			}
		}
	}
	if rounds != int64(env.Rounds) || !sawEnd {
		t.Fatalf("journal holds %d round events (want %d), run_end=%v", rounds, env.Rounds, sawEnd)
	}
	// The journal's final cumulative ledger is the /status ledger is the
	// run result's ledger.
	if lastUp != s.UpBytes || lastDown != s.DownBytes {
		t.Errorf("journal ledger (up %d, down %d) != status (up %d, down %d)", lastUp, lastDown, s.UpBytes, s.DownBytes)
	}
	if lastUp != res.Comm.UpBytes || lastDown != res.Comm.DownBytes {
		t.Errorf("journal ledger (up %d, down %d) != result (up %d, down %d)", lastUp, lastDown, res.Comm.UpBytes, res.Comm.DownBytes)
	}
}

package linalg

import (
	"fmt"
	"math"

	"fedclust/internal/tensor"
)

// SVD holds a thin singular value decomposition A = U · diag(S) · Vᵀ of an
// m×n matrix with r = min(m, n): U is m×r, S has length r (descending),
// V is n×r.
type SVD struct {
	U *tensor.Tensor
	S []float64
	V *tensor.Tensor
}

// ComputeSVD returns the thin SVD of a using the one-sided Jacobi method
// (Hestenes), which orthogonalizes the columns of a working copy of A by
// plane rotations; singular values are the resulting column norms. The
// method is slow but simple and very accurate, and the matrices in this
// code base (client data sketches, weight matrices) are small.
func ComputeSVD(a *tensor.Tensor) SVD {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("linalg: SVD requires a rank-2 tensor, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	transposed := false
	work := a.Clone()
	if m < n {
		// One-sided Jacobi wants m >= n; use A = U S Vᵀ ⇔ Aᵀ = V S Uᵀ.
		work = tensor.Transpose(work)
		m, n = n, m
		transposed = true
	}
	v := tensor.New(n, n)
	for i := 0; i < n; i++ {
		v.Set(1, i, i)
	}
	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// alpha = ap·ap, beta = aq·aq, gamma = ap·aq
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					ap, aq := work.At(i, p), work.At(i, q)
					alpha += ap * ap
					beta += aq * aq
					gamma += ap * aq
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				converged = false
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < m; i++ {
					ap, aq := work.At(i, p), work.At(i, q)
					work.Set(c*ap-s*aq, i, p)
					work.Set(s*ap+c*aq, i, q)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(c*vp-s*vq, i, p)
					v.Set(s*vp+c*vq, i, q)
				}
			}
		}
		if converged {
			break
		}
	}
	// Column norms are singular values; normalize columns to get U.
	s := make([]float64, n)
	u := tensor.New(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			x := work.At(i, j)
			norm += x * x
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Set(work.At(i, j)/norm, i, j)
			}
		}
	}
	sortSVDDescending(s, u, v)
	if transposed {
		u, v = v, u
	}
	return SVD{U: u, S: s, V: v}
}

// sortSVDDescending reorders singular values (and the matching U, V
// columns) into descending order.
func sortSVDDescending(s []float64, u, v *tensor.Tensor) {
	n := len(s)
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[j] > s[best] {
				best = j
			}
		}
		if best != i {
			s[i], s[best] = s[best], s[i]
			swapCols(u, i, best)
			swapCols(v, i, best)
		}
	}
}

func swapCols(a *tensor.Tensor, i, j int) {
	for r := 0; r < a.Shape[0]; r++ {
		vi, vj := a.At(r, i), a.At(r, j)
		a.Set(vj, r, i)
		a.Set(vi, r, j)
	}
}

// Reconstruct returns U · diag(S) · Vᵀ, the matrix the SVD factors.
func (d SVD) Reconstruct() *tensor.Tensor {
	m := d.U.Shape[0]
	r := len(d.S)
	n := d.V.Shape[0]
	us := tensor.New(m, r)
	for i := 0; i < m; i++ {
		for j := 0; j < r; j++ {
			us.Set(d.U.At(i, j)*d.S[j], i, j)
		}
	}
	vt := tensor.Transpose(d.V)
	_ = n
	return tensor.MatMul(us, vt)
}

// TruncateU returns the first p left singular vectors as an m×p matrix —
// the rank-p basis of the column space, which is what PACFL transmits.
func (d SVD) TruncateU(p int) *tensor.Tensor {
	m := d.U.Shape[0]
	if p <= 0 || p > d.U.Shape[1] {
		panic(fmt.Sprintf("linalg: TruncateU p=%d out of range (cols=%d)", p, d.U.Shape[1]))
	}
	out := tensor.New(m, p)
	for i := 0; i < m; i++ {
		for j := 0; j < p; j++ {
			out.Set(d.U.At(i, j), i, j)
		}
	}
	return out
}

// Orthonormalize performs modified Gram-Schmidt on the columns of a,
// returning an m×r matrix with orthonormal columns spanning the same space
// (r = number of numerically independent columns).
func Orthonormalize(a *tensor.Tensor) *tensor.Tensor {
	if len(a.Shape) != 2 {
		panic("linalg: Orthonormalize requires a rank-2 tensor")
	}
	m, n := a.Shape[0], a.Shape[1]
	cols := make([][]float64, 0, n)
	for j := 0; j < n; j++ {
		v := make([]float64, m)
		for i := 0; i < m; i++ {
			v[i] = a.At(i, j)
		}
		for _, u := range cols {
			var dot float64
			for i := range v {
				dot += v[i] * u[i]
			}
			for i := range v {
				v[i] -= dot * u[i]
			}
		}
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			continue // linearly dependent column
		}
		for i := range v {
			v[i] /= norm
		}
		cols = append(cols, v)
	}
	out := tensor.New(m, len(cols))
	for j, v := range cols {
		for i := 0; i < m; i++ {
			out.Set(v[i], i, j)
		}
	}
	return out
}

// PrincipalAngles returns the principal angles (radians, ascending) between
// the column spaces of u1 (m×p) and u2 (m×q). Both inputs must have
// orthonormal columns (use Orthonormalize or SVD.TruncateU). The angles are
// acos of the singular values of u1ᵀ·u2, clamped to [0, π/2].
func PrincipalAngles(u1, u2 *tensor.Tensor) []float64 {
	if u1.Shape[0] != u2.Shape[0] {
		panic(fmt.Sprintf("linalg: PrincipalAngles ambient dims differ: %v vs %v", u1.Shape, u2.Shape))
	}
	m := tensor.MatMul(tensor.Transpose(u1), u2)
	d := ComputeSVD(m)
	angles := make([]float64, len(d.S))
	for i, s := range d.S {
		if s > 1 {
			s = 1
		}
		if s < 0 {
			s = 0
		}
		angles[i] = math.Acos(s)
	}
	// Singular values descending ⇒ angles ascending already.
	return angles
}

// SubspaceDistance returns the PACFL proximity between two orthonormal
// bases: the sum (in degrees) of the principal angles of the smaller
// dimension. Identical subspaces give 0, orthogonal ones p·90.
func SubspaceDistance(u1, u2 *tensor.Tensor) float64 {
	angles := PrincipalAngles(u1, u2)
	var sum float64
	for _, a := range angles {
		sum += a * 180 / math.Pi
	}
	return sum
}

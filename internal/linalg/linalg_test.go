package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"fedclust/internal/rng"
	"fedclust/internal/tensor"
)

func randMatrix(r *rng.Rng, m, n int) *tensor.Tensor {
	t := tensor.New(m, n)
	for i := range t.Data {
		t.Data[i] = r.NormFloat64()
	}
	return t
}

func randSymmetric(r *rng.Rng, n int) *tensor.Tensor {
	a := randMatrix(r, n, n)
	at := tensor.Transpose(a)
	s := tensor.Add(a, at)
	s.Scale(0.5)
	return s
}

func TestSymEigDiagonal(t *testing.T) {
	a := tensor.New(3, 3)
	a.Set(3, 0, 0)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	vals, _ := SymEig(a)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-10 {
			t.Fatalf("eigenvalues = %v, want %v", vals, want)
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := tensor.FromSlice([]float64{2, 1, 1, 2}, 2, 2)
	vals, v := SymEig(a)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	e0 := Column(v, 0)
	if math.Abs(math.Abs(e0.Data[0])-math.Sqrt2/2) > 1e-9 ||
		math.Abs(e0.Data[0]-e0.Data[1]) > 1e-9 {
		t.Fatalf("top eigenvector = %v", e0.Data)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 5, 12} {
		a := randSymmetric(r, n)
		vals, v := SymEig(a)
		// A·v_j == λ_j·v_j for every eigenpair.
		for j := 0; j < n; j++ {
			ej := Column(v, j)
			av := tensor.MatVec(a, ej)
			ej.Scale(vals[j])
			if !tensor.Equal(av, ej, 1e-8*(1+math.Abs(vals[j]))) {
				t.Fatalf("n=%d eigenpair %d fails A·v = λ·v", n, j)
			}
		}
		// Eigenvectors orthonormal: VᵀV = I.
		vtv := tensor.MatMul(tensor.Transpose(v), v)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-9 {
					t.Fatalf("n=%d VᵀV not identity at (%d,%d): %v", n, i, j, vtv.At(i, j))
				}
			}
		}
	}
}

func TestSymEigTraceProperty(t *testing.T) {
	// Sum of eigenvalues == trace (property over random seeds).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		a := randSymmetric(r, n)
		vals, _ := SymEig(a)
		var sum, tr float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
			sum += vals[i]
		}
		return math.Abs(sum-tr) < 1e-8*(1+math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	r := rng.New(2)
	for _, dims := range [][2]int{{1, 1}, {3, 3}, {5, 3}, {3, 5}, {10, 4}, {4, 10}} {
		a := randMatrix(r, dims[0], dims[1])
		d := ComputeSVD(a)
		if !tensor.Equal(d.Reconstruct(), a, 1e-8) {
			t.Fatalf("SVD reconstruction failed for %v", dims)
		}
	}
}

func TestSVDSingularValuesSortedNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, n := 1+r.Intn(10), 1+r.Intn(10)
		d := ComputeSVD(randMatrix(r, m, n))
		for i, s := range d.S {
			if s < 0 {
				return false
			}
			if i > 0 && d.S[i-1] < s-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	r := rng.New(3)
	a := randMatrix(r, 8, 5)
	d := ComputeSVD(a)
	utu := tensor.MatMul(tensor.Transpose(d.U), d.U)
	vtv := tensor.MatMul(tensor.Transpose(d.V), d.V)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(utu.At(i, j)-want) > 1e-9 || math.Abs(vtv.At(i, j)-want) > 1e-9 {
				t.Fatal("SVD factors not orthonormal")
			}
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := tensor.FromSlice([]float64{3, 0, 0, -2}, 2, 2)
	d := ComputeSVD(a)
	if math.Abs(d.S[0]-3) > 1e-10 || math.Abs(d.S[1]-2) > 1e-10 {
		t.Fatalf("singular values = %v, want [3 2]", d.S)
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value ~0, reconstruction exact.
	a := tensor.FromSlice([]float64{1, 2, 2, 4, 3, 6}, 3, 2)
	d := ComputeSVD(a)
	if d.S[1] > 1e-10 {
		t.Fatalf("rank-1 matrix second singular value = %v", d.S[1])
	}
	if !tensor.Equal(d.Reconstruct(), a, 1e-9) {
		t.Fatal("rank-deficient reconstruction failed")
	}
}

func TestTruncateU(t *testing.T) {
	r := rng.New(4)
	a := randMatrix(r, 6, 4)
	d := ComputeSVD(a)
	u2 := d.TruncateU(2)
	if u2.Shape[0] != 6 || u2.Shape[1] != 2 {
		t.Fatalf("TruncateU shape = %v", u2.Shape)
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < 6; i++ {
			if u2.At(i, j) != d.U.At(i, j) {
				t.Fatal("TruncateU did not copy leading columns")
			}
		}
	}
}

func TestOrthonormalize(t *testing.T) {
	r := rng.New(5)
	a := randMatrix(r, 7, 3)
	q := Orthonormalize(a)
	if q.Shape[1] != 3 {
		t.Fatalf("Orthonormalize dropped independent columns: %v", q.Shape)
	}
	qtq := tensor.MatMul(tensor.Transpose(q), q)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(qtq.At(i, j)-want) > 1e-10 {
				t.Fatal("Orthonormalize result not orthonormal")
			}
		}
	}
}

func TestOrthonormalizeDropsDependentColumns(t *testing.T) {
	// Second column is 2× the first.
	a := tensor.FromSlice([]float64{1, 2, 1, 2, 1, 2}, 3, 2)
	q := Orthonormalize(a)
	if q.Shape[1] != 1 {
		t.Fatalf("expected 1 independent column, got %d", q.Shape[1])
	}
}

func TestPrincipalAnglesIdenticalSubspaces(t *testing.T) {
	r := rng.New(6)
	u := Orthonormalize(randMatrix(r, 8, 3))
	angles := PrincipalAngles(u, u)
	for _, a := range angles {
		if a > 1e-6 {
			t.Fatalf("identical subspaces should have zero angles, got %v", angles)
		}
	}
	if d := SubspaceDistance(u, u); d > 1e-4 {
		t.Fatalf("SubspaceDistance(u,u) = %v", d)
	}
}

func TestPrincipalAnglesOrthogonalSubspaces(t *testing.T) {
	// span(e0,e1) vs span(e2,e3) in R^4: both angles are π/2.
	u1 := tensor.New(4, 2)
	u1.Set(1, 0, 0)
	u1.Set(1, 1, 1)
	u2 := tensor.New(4, 2)
	u2.Set(1, 2, 0)
	u2.Set(1, 3, 1)
	angles := PrincipalAngles(u1, u2)
	for _, a := range angles {
		if math.Abs(a-math.Pi/2) > 1e-9 {
			t.Fatalf("orthogonal subspaces angles = %v", angles)
		}
	}
	if d := SubspaceDistance(u1, u2); math.Abs(d-180) > 1e-6 {
		t.Fatalf("SubspaceDistance orthogonal = %v, want 180", d)
	}
}

func TestPrincipalAnglesPartialOverlap(t *testing.T) {
	// span(e0,e1) vs span(e0,e2): one zero angle, one right angle.
	u1 := tensor.New(3, 2)
	u1.Set(1, 0, 0)
	u1.Set(1, 1, 1)
	u2 := tensor.New(3, 2)
	u2.Set(1, 0, 0)
	u2.Set(1, 2, 1)
	angles := PrincipalAngles(u1, u2)
	if math.Abs(angles[0]) > 1e-9 || math.Abs(angles[1]-math.Pi/2) > 1e-9 {
		t.Fatalf("partial overlap angles = %v", angles)
	}
}

func TestVecDistanceEuclidean(t *testing.T) {
	if d := VecDistance(Euclidean, []float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("euclidean = %v", d)
	}
}

func TestVecDistanceCosine(t *testing.T) {
	if d := VecDistance(Cosine, []float64{1, 0}, []float64{2, 0}); math.Abs(d) > 1e-12 {
		t.Fatalf("cosine parallel = %v", d)
	}
	if d := VecDistance(Cosine, []float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("cosine orthogonal = %v", d)
	}
	if d := VecDistance(Cosine, []float64{1, 0}, []float64{-1, 0}); math.Abs(d-2) > 1e-12 {
		t.Fatalf("cosine opposite = %v", d)
	}
	if d := VecDistance(Cosine, []float64{0, 0}, []float64{1, 0}); d != 1 {
		t.Fatalf("cosine with zero vector = %v", d)
	}
}

func TestVecDistanceManhattan(t *testing.T) {
	if d := VecDistance(Manhattan, []float64{1, -1}, []float64{-1, 1}); d != 4 {
		t.Fatalf("manhattan = %v", d)
	}
}

func TestMetricString(t *testing.T) {
	if Euclidean.String() != "euclidean" || Cosine.String() != "cosine" || Manhattan.String() != "manhattan" {
		t.Fatal("Metric.String wrong")
	}
}

func TestPairwiseDistancesProperties(t *testing.T) {
	r := rng.New(7)
	n, dim := 12, 40
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, dim)
		for j := range vecs[i] {
			vecs[i][j] = r.NormFloat64()
		}
	}
	d := PairwiseDistances(Euclidean, vecs)
	for i := 0; i < n; i++ {
		if d.At(i, i) != 0 {
			t.Fatal("diagonal must be zero")
		}
		for j := 0; j < n; j++ {
			if d.At(i, j) != d.At(j, i) {
				t.Fatal("matrix must be symmetric")
			}
			if want := VecDistance(Euclidean, vecs[i], vecs[j]); math.Abs(d.At(i, j)-want) > 1e-12 {
				t.Fatal("entry does not match direct distance")
			}
		}
	}
}

func TestPairwiseDistancesEmptyAndSingle(t *testing.T) {
	d := PairwiseDistances(Euclidean, nil)
	if d.Size() != 0 {
		t.Fatal("empty input should give empty matrix")
	}
	d1 := PairwiseDistances(Euclidean, [][]float64{{1, 2}})
	if d1.Shape[0] != 1 || d1.At(0, 0) != 0 {
		t.Fatal("single vector matrix wrong")
	}
}

func TestPairwiseFromFunc(t *testing.T) {
	n := 9
	d := PairwiseFromFunc(n, func(i, j int) float64 { return float64(i + j) })
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := float64(i + j)
			if i == j {
				want = 0
			}
			if d.At(i, j) != want {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, d.At(i, j), want)
			}
		}
	}
}

func TestColumn(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	c := Column(a, 1)
	if c.Data[0] != 2 || c.Data[1] != 5 {
		t.Fatalf("Column = %v", c.Data)
	}
}

func BenchmarkSVD32x16(b *testing.B) {
	r := rng.New(1)
	a := randMatrix(r, 32, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeSVD(a)
	}
}

func BenchmarkSymEig24(b *testing.B) {
	r := rng.New(1)
	a := randSymmetric(r, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = SymEig(a)
	}
}

func BenchmarkPairwiseDistances(b *testing.B) {
	r := rng.New(1)
	vecs := make([][]float64, 50)
	for i := range vecs {
		vecs[i] = make([]float64, 850)
		for j := range vecs[i] {
			vecs[i][j] = r.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PairwiseDistances(Euclidean, vecs)
	}
}

package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fedclust/internal/tensor"
)

// Metric identifies a vector dissimilarity used when building proximity
// matrices over client weight vectors.
type Metric int

const (
	// Euclidean is the L2 distance — the metric FedClust uses on
	// final-layer weights.
	Euclidean Metric = iota
	// Cosine is 1 - cosine similarity — the metric CFL uses on updates.
	Cosine
	// Manhattan is the L1 distance (ablation option).
	Manhattan
)

// String returns a human-readable metric name.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "euclidean"
	case Cosine:
		return "cosine"
	case Manhattan:
		return "manhattan"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// VecDistance returns the chosen dissimilarity between equal-length vectors.
func VecDistance(m Metric, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: VecDistance length mismatch %d vs %d", len(a), len(b)))
	}
	switch m {
	case Euclidean:
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	case Cosine:
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		if na == 0 || nb == 0 {
			return 1
		}
		return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
	case Manhattan:
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	default:
		panic(fmt.Sprintf("linalg: unknown metric %d", int(m)))
	}
}

// PairwiseDistances builds the symmetric n×n proximity matrix over the
// given n vectors under metric m. Rows of the result are computed in
// parallel across GOMAXPROCS workers; the diagonal is zero.
func PairwiseDistances(m Metric, vecs [][]float64) *tensor.Tensor {
	n := len(vecs)
	out := tensor.New(n, n)
	if n == 0 {
		return out
	}
	dim := len(vecs[0])
	for i, v := range vecs {
		if len(v) != dim {
			panic(fmt.Sprintf("linalg: PairwiseDistances vector %d has length %d, want %d", i, len(v), dim))
		}
	}
	// Parallelize over the i index; each worker fills row i for j > i.
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n*n*dim < 32*1024 || workers < 2 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				for j := i + 1; j < n; j++ {
					d := VecDistance(m, vecs[i], vecs[j])
					out.Set(d, i, j)
				}
			}
		}()
	}
	wg.Wait()
	// Mirror the upper triangle (single-writer per cell above, so safe).
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			out.Set(out.At(j, i), i, j)
		}
	}
	return out
}

// PairwiseFromFunc builds a symmetric n×n proximity matrix from an
// arbitrary pairwise dissimilarity function (used by PACFL, where the
// "vectors" are subspace bases). f must be symmetric; it is called once
// per unordered pair, in parallel.
func PairwiseFromFunc(n int, f func(i, j int) float64) *tensor.Tensor {
	out := tensor.New(n, n)
	type pair struct{ i, j int }
	pairs := make(chan pair, n)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range pairs {
				d := f(p.i, p.j)
				out.Set(d, p.i, p.j)
				out.Set(d, p.j, p.i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs <- pair{i, j}
		}
	}
	close(pairs)
	wg.Wait()
	return out
}

// Package linalg implements the dense linear algebra the clustered-FL
// methods need: a symmetric Jacobi eigensolver (spectral bipartition in
// CFL), a one-sided Jacobi SVD and principal angles between subspaces
// (PACFL), orthonormalization, and parallel pairwise distance matrices
// (FedClust proximity matrix).
//
// All routines operate on internal/tensor rank-2 tensors and are designed
// for the small/medium problem sizes of FL simulation (tens to a few
// hundred clients, feature dimensions in the thousands).
package linalg

import (
	"fmt"
	"math"

	"fedclust/internal/tensor"
)

// SymEig computes the full eigendecomposition of a symmetric n×n matrix
// using the cyclic Jacobi rotation method. It returns the eigenvalues in
// descending order and the matching eigenvectors as the columns of v.
// The input is not modified.
func SymEig(a *tensor.Tensor) (vals []float64, v *tensor.Tensor) {
	if len(a.Shape) != 2 || a.Shape[0] != a.Shape[1] {
		panic(fmt.Sprintf("linalg: SymEig requires a square matrix, got %v", a.Shape))
	}
	n := a.Shape[0]
	w := a.Clone()
	v = tensor.New(n, n)
	for i := 0; i < n; i++ {
		v.Set(1, i, i)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-13*(1+frobNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Stable computation of the rotation angle.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	sortEigenDescending(vals, v)
	return vals, v
}

// rotate applies the Jacobi rotation J(p,q,c,s) as w ← JᵀwJ and
// accumulates v ← vJ.
func rotate(w, v *tensor.Tensor, p, q int, c, s float64) {
	n := w.Shape[0]
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(c*wip-s*wiq, i, p)
		w.Set(s*wip+c*wiq, i, q)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(c*wpj-s*wqj, p, j)
		w.Set(s*wpj+c*wqj, q, j)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(c*vip-s*viq, i, p)
		v.Set(s*vip+c*viq, i, q)
	}
}

func offDiagNorm(w *tensor.Tensor) float64 {
	n := w.Shape[0]
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				x := w.At(i, j)
				s += x * x
			}
		}
	}
	return math.Sqrt(s)
}

func frobNorm(w *tensor.Tensor) float64 { return w.Norm() }

// sortEigenDescending reorders eigenvalues (and matching eigenvector
// columns) into descending order by value.
func sortEigenDescending(vals []float64, v *tensor.Tensor) {
	n := len(vals)
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		if best != i {
			vals[i], vals[best] = vals[best], vals[i]
			for r := 0; r < n; r++ {
				vi, vb := v.At(r, i), v.At(r, best)
				v.Set(vb, r, i)
				v.Set(vi, r, best)
			}
		}
	}
}

// Column extracts column j of a rank-2 tensor as a fresh vector tensor.
func Column(a *tensor.Tensor, j int) *tensor.Tensor {
	m := a.Shape[0]
	out := tensor.New(m)
	for i := 0; i < m; i++ {
		out.Data[i] = a.At(i, j)
	}
	return out
}

// Newcomer: the paper's step ⑥ — incorporating clients that arrive after
// the one-shot clustering, in real time, without re-clustering.
//
// A founding population of two client groups (classes {0-4} vs {5-9}) is
// clustered and trained by FedClust. Then four newcomers arrive — two per
// group. Each follows the protocol: download the initial global weights,
// train locally for a couple of epochs, upload the final-layer feature,
// and get routed to the nearest cluster centroid. The example prints the
// routing decisions and the accuracy each newcomer gets from its served
// cluster model versus the untrained initial model.
//
//	go run ./examples/newcomer
package main

import (
	"fmt"

	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

func main() {
	const seed = 7
	cfg := data.SynthFMNIST(seed)
	cfg.TrainPerClass, cfg.TestPerClass = 120, 40
	train, test := data.Generate(cfg)

	// Founding population: two groups of four clients with disjoint
	// class sets.
	groups := [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}
	clients, truth := fl.BuildGroupClients(train, test, groups, []int{4, 4}, rng.New(seed))
	env := &fl.Env{
		Clients: clients,
		Factory: func(r *rng.Rng) *nn.Sequential {
			return nn.LeNet5(r, cfg.C, cfg.H, cfg.W, cfg.Classes, 0.5)
		},
		Rounds: 6,
		Local:  fl.LocalConfig{Epochs: 2, BatchSize: 32, LR: 0.02, Momentum: 0.5},
		Seed:   seed,
	}

	f := &core.FedClust{}
	res := f.Run(env)
	fmt.Printf("founders clustered (one shot): %v  (ground truth groups %v)\n", res.Clusters, truth)
	fmt.Printf("federated accuracy after %d rounds: %.2f%%\n\n", env.Rounds, 100*res.FinalAcc)

	// Which cluster did each group land in?
	groupCluster := map[int]int{}
	for i, g := range truth {
		groupCluster[g] = res.Clusters[i]
	}

	// Four newcomers arrive: fresh examples from the same distributions
	// (GenerateExtra draws new samples around the same class prototypes).
	newData := data.GenerateExtra(cfg, 0xa11, 60)
	newTest := data.GenerateExtra(cfg, 0xa12, 30)
	initModel := env.NewModel()
	for i := 0; i < 4; i++ {
		g := i % 2
		classes := groups[g]
		local := newData.FilterClasses(classes)
		localTest := newTest.FilterClasses(classes)

		// Step ⑥ protocol: local training from w₀, upload partial feature.
		m := env.NewModel()
		fl.LocalUpdate(m, local, env.Local, rng.New(seed).Derive(0x99, uint64(i)))
		feature := f.State.NewcomerFeature(m)
		assigned := f.State.AddNewcomer(feature)

		served := env.NewModel()
		nn.LoadParams(served, f.State.Models[assigned])
		_, accServed := fl.Evaluate(served, localTest, 64)
		_, accInit := fl.Evaluate(initModel, localTest, 64)

		status := "✓"
		if assigned != groupCluster[g] {
			status = "✗ (misrouted)"
		}
		fmt.Printf("newcomer %d (group %d, classes %v) → cluster %d %s\n",
			i, g, classes, assigned, status)
		fmt.Printf("    served cluster model: %5.2f%%   untrained init: %5.2f%%\n",
			100*accServed, 100*accInit)
	}
}

// Layerprobe: an interactive reproduction of the paper's Fig. 1.
//
// Ten clients in two label groups train a VGG-16-shaped network locally;
// for each probed weight layer the pairwise Euclidean distance matrix over
// that layer's weights is rendered as an ASCII heatmap. Early convolutional
// layers show no client structure; the final fully connected (classifier)
// layer shows a crisp two-block pattern — the observation FedClust's
// partial-weight uploads exploit.
//
//	go run ./examples/layerprobe
package main

import (
	"fmt"
	"os"

	"fedclust/internal/experiments"
)

func main() {
	opts := experiments.DefaultFig1Options()
	// Keep the example snappy: 3 clients per group, smaller local sets.
	opts.ClientsPerGroup = 3
	opts.TrainPerClass = 40
	opts.Epochs = 2

	fmt.Println("training 6 clients (two groups: classes 0-4 vs 5-9) on a VGG-16-shaped net...")
	res := experiments.RunFig1(opts)
	fmt.Printf("ground-truth groups: %v\n\n", res.Truth)
	res.Render(os.Stdout)
	fmt.Println()
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
	fmt.Println("\nReading the heatmaps: lighter = more similar (smaller distance).")
	fmt.Println("Layers 1 and 7 (convolutional) are nearly uniform — they carry no")
	fmt.Println("client-distribution signal. Layers 14 and 16 (fully connected) show")
	fmt.Println("the two client groups as light diagonal blocks, which is why FedClust")
	fmt.Println("clusters on final-layer weights only.")
}

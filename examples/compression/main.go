// Compression: shrinking the federated uplink with lossy codecs and
// top-k sparsification under error feedback.
//
// Every round each client ships its trained parameter vector back to the
// server. The wire layer (internal/wire) offers a ladder of uplink
// codecs: raw float64 frames, narrowed float32, 8-bit range quantization,
// and sparse top-k frames that keep only the coordinates that moved most
// — with a per-client error-feedback accumulator folding everything a
// frame dropped into the next round's upload, so nothing is ever lost,
// only deferred. CommStats prices each visit as the exact framed message
// a networked run would put on the wire, so the byte counts below are
// measured volume, not an 8-bytes-per-parameter estimate.
//
// The example sweeps the codec ladder on one environment, then sweeps
// the kept fraction of the sparse codec, and finally demonstrates the
// estimate == measured contract by re-running a cell over the loopback
// transport, where a node-side service holds the residuals and every
// byte is accounted off real frames.
//
//	go run ./examples/compression
package main

import (
	"fmt"

	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

func main() {
	const seed = 11
	cfg := data.SynthFMNIST(seed)
	cfg.TrainPerClass, cfg.TestPerClass = 120, 40
	cfg.ClassSep, cfg.Noise = 0.55, 1.6 // hard enough that codec loss shows
	train, test := data.Generate(cfg)

	build := func(c wire.Codec, frac float64) *fl.Env {
		r := rng.New(seed)
		clients := fl.BuildDirichletClients(train, test, 10, 0.5, r.Derive(0xc0dec))
		return &fl.Env{
			Clients: clients,
			Factory: func(fr *rng.Rng) *nn.Sequential {
				return nn.MLP(fr, cfg.C*cfg.H*cfg.W, 64, 32, cfg.Classes)
			},
			// Error feedback needs rounds to drain what sparse frames
			// defer: at 1% kept, the residual transient fades over tens of
			// rounds (see DESIGN.md §12), so codecs are compared at a
			// schedule where the frontier is about bytes, not warmup.
			Rounds:   40,
			Local:    fl.LocalConfig{Epochs: 2, BatchSize: 32, LR: 0.05, Momentum: 0.5},
			Seed:     seed,
			Codec:    c,
			TopKFrac: frac,
		}
	}
	numParams := build(wire.Float64, 0).NewModel().NumParams()
	fmt.Printf("model: %d parameters; one dense float64 uplink = %s framed\n\n",
		numParams, fl.FormatBytes(fl.TrainResponseBytes(wire.Float64, numParams)))

	// 1. The codec ladder: same schedule, same seed, only the uplink
	//    encoding changes.
	fmt.Printf("%-12s %10s %10s %8s %12s\n", "codec", "uplink", "downlink", "acc", "reduction")
	var baseUp int64
	var baseAcc float64
	for _, c := range []wire.Codec{wire.Float64, wire.Float32, wire.Quant8, wire.TopK, wire.TopKQuant8} {
		res := methods.FedAvg{}.Run(build(c, 0.01))
		if c == wire.Float64 {
			baseUp, baseAcc = res.Comm.UpBytes, res.FinalAcc
		}
		fmt.Printf("%-12s %10s %10s %7.2f%% %11.1fx (Δ%+.2fpp)\n",
			c, fl.FormatBytes(res.Comm.UpBytes), fl.FormatBytes(res.Comm.DownBytes),
			100*res.FinalAcc, float64(baseUp)/float64(res.Comm.UpBytes),
			100*(res.FinalAcc-baseAcc))
	}

	// 2. The sparsity dial: how little can the uplink carry before error
	//    feedback stops hiding the loss at this schedule?
	fmt.Printf("\ntopk-quant8 kept fraction sweep:\n")
	for _, frac := range []float64{0.10, 0.05, 0.01, 0.005} {
		res := methods.FedAvg{}.Run(build(wire.TopKQuant8, frac))
		k := wire.TopKCount(numParams, frac)
		fmt.Printf("  frac %-5g (k=%4d): uplink %9s, acc %5.2f%% (Δ%+.2fpp, %5.1fx)\n",
			frac, k, fl.FormatBytes(res.Comm.UpBytes), 100*res.FinalAcc,
			100*(res.FinalAcc-baseAcc), float64(baseUp)/float64(res.Comm.UpBytes))
	}

	// 3. Estimate == measured: route every client through a loopback
	//    transport — the node-side service owns the error-feedback
	//    residuals and each exchange is accounted at its real framed size.
	//    The in-process run's priced bytes must match byte for byte (the
	//    same contract TestCommEstimateMatchesLoopbackMeasured pins).
	est := methods.FedAvg{}.Run(build(wire.TopKQuant8, 0.01))
	renv := build(wire.TopKQuant8, 0.01)
	fleet := transport.NewFleet(len(renv.Clients))
	fleet.Assign(transport.NewLoopback(transport.NewService(build(wire.TopKQuant8, 0.01)), wire.TopKQuant8), 0, len(renv.Clients))
	renv.Remote = fleet
	meas := methods.FedAvg{}.Run(renv)
	fmt.Printf("\nestimate vs measured (topk-quant8, frac 0.01):\n")
	fmt.Printf("  in-process estimate: up %d B, down %d B\n", est.Comm.UpBytes, est.Comm.DownBytes)
	fmt.Printf("  loopback measured:   up %d B, down %d B\n", meas.Comm.UpBytes, meas.Comm.DownBytes)
	if est.Comm.UpBytes == meas.Comm.UpBytes && est.Comm.DownBytes == meas.Comm.DownBytes &&
		est.FinalAcc == meas.FinalAcc {
		fmt.Println("  identical, byte for byte — and the learning outcome is bit-identical too.")
	} else {
		fmt.Println("  MISMATCH — the honest-bytes contract is broken.")
	}

	fmt.Println("\nFloat32 halves the uplink for free. Quant8's uniform 8-bit grid is the")
	fmt.Println("cautionary tale: it rounds both directions of a noisy task and pays")
	fmt.Println("several points for its 8x. The sparse codecs change the regime: a 1%")
	fmt.Println("top-k frame with 8-bit values moves >100x less uplink than raw float64,")
	fmt.Println("and error feedback keeps every dropped coordinate flowing into later")
	fmt.Println("rounds — on a noisy task the delayed, accumulated updates even act as a")
	fmt.Println("mild regularizer, which is why the sparse rows land above the dense")
	fmt.Println("baseline here once the residual transient has drained.")
}

// Distributed walkthrough: the same federated run twice — once fully
// in-process, once with every client's local training executed by real
// node processes over localhost TCP — and a bit-level comparison of the
// results. It demonstrates the whole transport stack end to end:
//
//  1. the parent process becomes the coordinator: it builds the
//     environment, listens on a free port, and spawns N copies of
//     itself as node processes (`-role node`);
//  2. each node dials in, receives the environment spec in the
//     handshake, rebuilds an identical replica (data is never shipped —
//     only the recipe), and serves train requests;
//  3. the coordinator runs FedAvg and FedClust with its clients routed
//     to the nodes, measuring actual bytes on the wire;
//  4. final accuracies are compared against the in-process baseline —
//     under the lossless codec they match bit for bit.
//
//	go run ./examples/distributed            # 3 nodes, quick workload
//	go run ./examples/distributed -nodes 5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"time"

	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

func main() {
	role := flag.String("role", "coordinator", "internal: coordinator | node")
	addr := flag.String("addr", "", "coordinator address (node role)")
	nodes := flag.Int("nodes", 3, "node processes to spawn")
	seed := flag.Uint64("seed", 42, "root seed")
	flag.Parse()
	switch *role {
	case "node":
		runNode(*addr)
	case "coordinator":
		runCoordinator(*nodes, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		os.Exit(2)
	}
}

// spec is the walkthrough workload: 8 clients in four label groups on an
// 8×8 synthetic dataset — small enough for seconds-long runs, grouped so
// FedClust has structure to discover.
func spec(seed uint64) *transport.Spec {
	return &transport.Spec{
		Dataset: data.SynthConfig{
			Name: "dist4", C: 1, H: 8, W: 8, Classes: 8,
			TrainPerClass: 60, TestPerClass: 20,
			ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
		},
		Groups:    [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}},
		PerGroup:  []int{2, 2, 2, 2},
		Hidden:    []int{24},
		Seed:      seed,
		Rounds:    8,
		EvalEvery: 4,
		Local:     fl.LocalConfig{Epochs: 2, BatchSize: 16, LR: 0.1, Momentum: 0.9},
	}
}

// runNode is the child-process role: join, replicate, serve until Bye.
func runNode(addr string) {
	conn, lo, hi, specBytes, err := transport.Join(addr, fmt.Sprintf("node-%d", os.Getpid()))
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	sp, err := transport.ParseSpec(specBytes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	env, err := sp.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("[node %d] replica ready, serving clients [%d,%d)\n", os.Getpid(), lo, hi)
	if err := transport.NewService(env).ServeConn(conn); err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
}

func runCoordinator(nNodes int, seed uint64) {
	sp := spec(seed)
	if nClients := sum(sp.PerGroup); nNodes < 1 || nNodes > nClients {
		fmt.Fprintf(os.Stderr, "distributed: -nodes %d must be in [1,%d] (one client range per node)\n", nNodes, nClients)
		os.Exit(2)
	}
	specBytes, err := sp.Marshal()
	check(err)

	// --- Baseline: the identical schedule, all in one process.
	fmt.Printf("== in-process baseline ==\n")
	baseEnv, err := sp.Build()
	check(err)
	baseAvg := methods.FedAvg{}.Run(baseEnv)
	fmt.Printf("FedAvg    acc %.2f%%  (estimated traffic: %s)\n", 100*baseAvg.FinalAcc, baseAvg.Comm.String())
	baseClust := (&core.FedClust{}).Run(baseEnv)
	fmt.Printf("FedClust  acc %.2f%%  clusters %v\n\n", 100*baseClust.FinalAcc, baseClust.Clusters)

	// --- Distributed: same schedule, training on N node processes.
	coord, err := transport.Listen("127.0.0.1:0")
	check(err)
	defer coord.Close()
	self, err := os.Executable()
	check(err)
	fmt.Printf("== distributed: spawning %d node processes against %s ==\n", nNodes, coord.Addr())
	children := make([]*exec.Cmd, nNodes)
	for i := range children {
		cmd := exec.Command(self, "-role", "node", "-addr", coord.Addr())
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		check(cmd.Start())
		children[i] = cmd
	}
	env, err := sp.Build()
	check(err)
	nodes, err := coord.AcceptNodes(nNodes, len(env.Clients), specBytes, wire.Float64, 60*time.Second)
	check(err)
	for _, nd := range nodes {
		fmt.Printf("  %q owns clients [%d,%d)\n", nd.Name(), nd.Lo, nd.Hi)
	}
	fleet := transport.FleetOf(len(env.Clients), nodes)
	env.Remote = fleet

	start := time.Now()
	distAvg := methods.FedAvg{}.Run(env)
	fmt.Printf("FedAvg    acc %.2f%%  (measured wire traffic: %s)\n", 100*distAvg.FinalAcc, distAvg.Comm.String())
	distClust := (&core.FedClust{}).Run(env)
	fmt.Printf("FedClust  acc %.2f%%  clusters %v  [%v]\n\n",
		100*distClust.FinalAcc, distClust.Clusters, time.Since(start).Round(time.Millisecond))

	check(fleet.Close()) // says Bye; nodes exit
	for _, cmd := range children {
		check(cmd.Wait())
	}

	// --- The point: network execution changed nothing about learning.
	ok := true
	ok = verify(&ok, "FedAvg final accuracy", baseAvg.FinalAcc, distAvg.FinalAcc)
	ok = verify(&ok, "FedClust final accuracy", baseClust.FinalAcc, distClust.FinalAcc)
	for i := range baseClust.Clusters {
		if baseClust.Clusters[i] != distClust.Clusters[i] {
			fmt.Printf("MISMATCH: client %d clustered %d in-process vs %d distributed\n",
				i, baseClust.Clusters[i], distClust.Clusters[i])
			ok = false
		}
	}
	if !ok {
		fmt.Println("\nresult: DIVERGED — distributed run does not match the in-process baseline")
		os.Exit(1)
	}
	fmt.Println("result: MATCH — distributed and in-process runs are bit-identical")
}

// verify compares one scalar bit-exactly.
func verify(ok *bool, what string, a, b float64) bool {
	if math.Float64bits(a) != math.Float64bits(b) {
		fmt.Printf("MISMATCH: %s %v (in-process) vs %v (distributed)\n", what, a, b)
		*ok = false
	}
	return *ok
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
		os.Exit(1)
	}
}

// Hostile: training while a byzantine cohort attacks the round — and the
// robust aggregators that defend it.
//
// The hostile layer of internal/scenario gives a seeded fraction of
// clients an attack profile. Sign-flippers train honestly and then report
// the *reflected* model (start - (out - start)): exactly the update that
// pulls the average away from convergence. The server's only lever is its
// combine rule: the plain weighted mean trusts everyone; trimmed-mean
// drops the per-coordinate extremes; coordinate-median ignores outliers
// entirely; Krum picks the update most surrounded by its peers. All of it
// stays on the same determinism contract as the rest of the stack — the
// attacker cohort, the corrupted bytes, and the final accuracy are a pure
// function of the seed.
//
//	go run ./examples/hostile
package main

import (
	"fmt"

	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/scenario"
)

func main() {
	const seed = 7
	cfg := data.SynthFMNIST(seed)
	cfg.TrainPerClass, cfg.TestPerClass = 120, 40
	train, test := data.Generate(cfg)

	build := func() *fl.Env {
		r := rng.New(seed)
		clients := fl.BuildDirichletClients(train, test, 10, 0.5, r.Derive(0x57a))
		return &fl.Env{
			Clients: clients,
			Factory: func(fr *rng.Rng) *nn.Sequential {
				return nn.LeNet5(fr, cfg.C, cfg.H, cfg.W, cfg.Classes, 0.5)
			},
			Rounds: 8,
			Local:  fl.LocalConfig{Epochs: 2, BatchSize: 32, LR: 0.02, Momentum: 0.5},
			Seed:   seed,
		}
	}

	const byzFrac = 0.2
	fmt.Printf("%d clients, %.0f%% sign-flip attackers, FedAvg under each defense\n\n",
		10, 100*byzFrac)
	fmt.Printf("%-22s  %-8s\n", "aggregator", "FinalAcc")
	for _, name := range append([]string{"mean (benign run)"}, fl.AggregatorNames...) {
		env := build()
		aggName := name
		if name != "mean (benign run)" {
			model := scenario.New(scenario.Config{
				ByzantineFrac: byzFrac,
				Attack:        scenario.AttackSignFlip,
			}, seed, len(env.Clients))
			env.Participation.Scenario = model
		} else {
			aggName = "mean"
		}
		agg, err := fl.NewAggregator(aggName, byzFrac)
		if err != nil {
			panic(err)
		}
		env.Aggregator = agg
		res := methods.FedAvg{}.Run(env)
		fmt.Printf("%-22s  %6.2f%%\n", name, 100*res.FinalAcc)
	}

	fmt.Println("\nThe undefended mean hands the sign-flippers a veto: two attackers'")
	fmt.Println("reflected updates cancel two honest ones and drag the global model")
	fmt.Println("backwards. The robust rules pay a small benign-world premium for")
	fmt.Println("refusing to average the extremes — and under attack they recover")
	fmt.Println("nearly all of the benign accuracy. Sweep the full frontier with:")
	fmt.Println("\n\tgo run ./cmd/fedsim hostile -quick")
}

// Heterogeneity: how the FedClust-vs-FedAvg gap depends on how non-IID
// the clients are.
//
// The Dirichlet concentration α controls label skew: α→0 gives each client
// a nearly single-class dataset, α→∞ approaches IID. The example runs both
// methods across α ∈ {0.05, 0.5, 10} and prints accuracy plus partition
// diagnostics (label entropy, earth-mover skew), showing that clustering
// pays off exactly when clients are heterogeneous — and is harmless when
// they are not.
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"

	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/partition"
	"fedclust/internal/rng"
)

func main() {
	const seed = 11
	cfg := data.SynthSVHN(seed)
	cfg.TrainPerClass, cfg.TestPerClass = 120, 40
	train, test := data.Generate(cfg)

	fmt.Printf("%-6s  %-28s  %-8s  %-8s  %-8s\n", "alpha", "partition diagnostics", "FedAvg", "FedClust", "gap")
	for _, alpha := range []float64{0.05, 0.5, 10} {
		r := rng.New(seed)
		assign := partition.Dirichlet(train.Y, 10, alpha, 2*train.Classes, r)
		clients := fl.BuildClients(train, test, assign, r.Derive(0x7e57))
		env := &fl.Env{
			Clients: clients,
			Factory: func(fr *rng.Rng) *nn.Sequential {
				return nn.LeNet5(fr, cfg.C, cfg.H, cfg.W, cfg.Classes, 0.5)
			},
			Rounds: 8,
			Local:  fl.LocalConfig{Epochs: 1, BatchSize: 32, LR: 0.02, Momentum: 0.5},
			Seed:   seed,
		}
		avg := methods.FedAvg{}.Run(env)
		fc := (&core.FedClust{}).Run(env)
		diag := fmt.Sprintf("entropy %.2f, skew %.2f",
			partition.AvgLabelEntropy(assign, train.Y, train.Classes),
			partition.SkewEMD(assign, train.Y, train.Classes))
		fmt.Printf("%-6v  %-28s  %6.2f%%  %6.2f%%  %+6.2f pts\n",
			alpha, diag, 100*avg.FinalAcc, 100*fc.FinalAcc,
			100*(fc.FinalAcc-avg.FinalAcc))
	}
	fmt.Println("\nUnder severe skew (α=0.05) the one-global-model assumption breaks and")
	fmt.Println("FedClust's per-cluster models win by a wide margin; near IID (α=10) a")
	fmt.Println("single model is already right, and the gap shrinks toward zero.")
}

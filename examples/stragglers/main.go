// Stragglers: training under system heterogeneity — slow devices,
// per-round dropouts, and staleness-aware aggregation.
//
// The scenario layer (internal/scenario) gives each client a seeded
// compute-speed profile and availability trace, and each round a virtual
// deadline. Slow clients finish only part of their local pass by the
// deadline (partial work, down-weighted in the average); offline clients
// report nothing. The example runs FedAvg, its stale-decay variant
// (missing clients are represented by their decayed last update), and the
// buffered semi-async FedBuff (stragglers' full updates arrive rounds
// late and fold in with staleness-decayed weight) under increasingly
// hostile conditions — and shows the whole stack stays bit-deterministic:
// the same seed yields the same stragglers, the same dropouts, the same
// accuracy, every run.
//
//	go run ./examples/stragglers
package main

import (
	"fmt"

	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
	"fedclust/internal/scenario"
)

func main() {
	const seed = 7
	cfg := data.SynthFMNIST(seed)
	cfg.TrainPerClass, cfg.TestPerClass = 120, 40
	train, test := data.Generate(cfg)

	build := func() *fl.Env {
		r := rng.New(seed)
		clients := fl.BuildDirichletClients(train, test, 10, 0.5, r.Derive(0x57a))
		return &fl.Env{
			Clients: clients,
			Factory: func(fr *rng.Rng) *nn.Sequential {
				return nn.LeNet5(fr, cfg.C, cfg.H, cfg.W, cfg.Classes, 0.5)
			},
			Rounds: 8,
			Local:  fl.LocalConfig{Epochs: 2, BatchSize: 32, LR: 0.02, Momentum: 0.5},
			Seed:   seed,
		}
	}

	trainers := []fl.Trainer{methods.FedAvg{}, methods.FedAvgStale{}, methods.FedBuff{}}

	fmt.Printf("%-28s  %-8s  %-12s  %-8s\n", "scenario", "FedAvg", "FedAvgStale", "FedBuff")
	for _, sc := range []struct {
		name string
		cfg  *scenario.Config
	}{
		{"ideal (scenario off)", nil},
		{"30% stragglers", &scenario.Config{StragglerFrac: 0.3, SlowdownMax: 4}},
		{"+ 30% dropout/round", &scenario.Config{StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.3}},
		{"+ tight deadline 0.5", &scenario.Config{StragglerFrac: 0.3, SlowdownMax: 4, DropoutRate: 0.3, Deadline: 0.5}},
	} {
		env := build()
		if sc.cfg != nil {
			model := scenario.New(*sc.cfg, seed, len(env.Clients))
			env.Participation.Scenario = model
			if sc.cfg.StragglerFrac > 0 && sc.cfg.DropoutRate == 0 {
				slow := 0
				for _, p := range model.Profiles() {
					if p.Straggler {
						slow++
					}
				}
				fmt.Printf("  (cohort drawn: %d/%d slow clients)\n", slow, len(env.Clients))
			}
		}
		fmt.Printf("%-28s", sc.name)
		for _, tr := range trainers {
			res := tr.Run(env)
			fmt.Printf("  %6.2f%%", 100*res.FinalAcc)
		}
		fmt.Println()
	}

	fmt.Println("\nWith everyone on time the three aggregators nearly coincide. As the")
	fmt.Println("deadline tightens, plain FedAvg aggregates ever-thinner partial passes,")
	fmt.Println("while the stale-decay server keeps every client's last update steering")
	fmt.Println("the global — late, down-weighted, but not lost — and pulls ahead.")
	fmt.Println("FedBuff never waits for anyone: it pays for that in accuracy here, the")
	fmt.Println("classic semi-async tradeoff (wall-clock per round would be bounded by")
	fmt.Println("the buffer, not by the slowest invited device).")
}

// Telemetry: watch where a federated run spends its time.
//
// It enables the process metrics gate, attaches a JSONL round journal to
// a small FedAvg run, and prints both observability surfaces: the
// per-round journal events (what `fedsim -journal` writes to disk and
// `fedsim tail` renders) and the Prometheus text exposition the control
// plane serves at GET /metrics.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"os"

	"fedclust/internal/experiments"
	"fedclust/internal/methods"
	"fedclust/internal/obs"
)

func main() {
	// 1. Turn the process telemetry gate on. `fedsim serve -control`
	//    does this when the control plane starts; in-process it is one
	//    explicit call. Off (the default), every instrumentation site
	//    costs a single atomic load and the engine skips phase timing.
	obs.Enable()

	// 2. A journal observer: one JSONL event per completed round. Here
	//    it streams to stdout; -journal writes the same bytes to a file.
	journal := obs.NewJournal(os.Stdout, 1)

	w := experiments.QuickWorkload("cifar10")
	env := experiments.BuildEnv(w, 1)
	env.Observer = journal

	res := methods.FedAvg{}.Run(env)
	fmt.Printf("\nFedAvg: %.2f%% mean personalized accuracy (%s)\n",
		100*res.FinalAcc, res.Comm.String())

	// 3. The same run seen through the metrics registry: cumulative
	//    counters plus per-phase latency histograms, in the exact bytes
	//    a Prometheus scrape of /metrics would receive.
	fmt.Println("\n--- GET /metrics ---")
	if err := obs.Default().WritePrometheus(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

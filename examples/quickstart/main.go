// Quickstart: the smallest end-to-end FedClust run.
//
// It builds a non-IID federated population from a synthetic image dataset,
// runs plain FedAvg and FedClust on identical environments, and prints the
// personalized test accuracy of both along with the clusters FedClust
// discovered — all in under a minute on a laptop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"fedclust/internal/cluster"
	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

func main() {
	const seed = 42

	// 1. A CIFAR-10-like synthetic dataset (3×16×16, 10 classes).
	cfg := data.SynthCIFAR10(seed)
	cfg.TrainPerClass, cfg.TestPerClass = 120, 40
	train, test := data.Generate(cfg)
	fmt.Printf("dataset %s: %d train / %d test examples, %d classes\n",
		cfg.Name, train.Len(), test.Len(), cfg.Classes)

	// 2. Ten clients with Dir(0.1) label skew — each device sees a very
	//    different class mixture, the paper's hard non-IID setting.
	clients := fl.BuildDirichletClients(train, test, 10, 0.1, rng.New(seed))
	for _, c := range clients {
		fmt.Printf("  client %d: %4d examples, label histogram %v\n",
			c.ID, c.Train.Len(), c.Train.LabelHistogram())
	}

	// 3. A shared environment: LeNet-5, 8 federated rounds.
	env := &fl.Env{
		Clients: clients,
		Factory: func(r *rng.Rng) *nn.Sequential {
			return nn.LeNet5(r, cfg.C, cfg.H, cfg.W, cfg.Classes, 0.5)
		},
		Rounds: 8,
		Local:  fl.LocalConfig{Epochs: 1, BatchSize: 32, LR: 0.02, Momentum: 0.5},
		Seed:   seed,
	}

	// 4. Baseline: one global FedAvg model for everyone.
	avg := methods.FedAvg{}.Run(env)
	fmt.Printf("\nFedAvg   : %5.2f%% mean personalized accuracy (%s)\n",
		100*avg.FinalAcc, avg.Comm.String())

	// 5. FedClust: one-shot weight-driven clustering, then per-cluster
	//    training. No cluster count is given — it is discovered. A deeper
	//    warmup (3 local epochs before the one-shot upload) sharpens the
	//    final-layer signal on this hard dataset.
	f := &core.FedClust{Cfg: core.Config{WarmupEpochs: 3}}
	res := f.Run(env)
	fmt.Printf("FedClust : %5.2f%% mean personalized accuracy (%s)\n",
		100*res.FinalAcc, res.Comm.String())
	fmt.Printf("\nFedClust discovered %d clusters in one round: %v\n",
		cluster.NumClusters(res.Clusters), res.Clusters)
	fmt.Printf("cluster-formation upload: %s (vs %s for one full model per client)\n",
		fl.FormatBytes(res.ClusterFormationUpBytes),
		fl.FormatBytes(int64(len(clients))*fl.CommPricing{}.UploadBytesFor(env.NewModel().NumParams())))
}

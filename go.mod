module fedclust

go 1.21

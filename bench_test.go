// Root benchmark harness: one benchmark per table/figure of the paper
// (plus the extension experiments in DESIGN.md §4). Each benchmark runs a
// reduced-scale but structurally faithful version of its experiment and
// reports the headline quantity (accuracy, ARI, bytes) as custom metrics,
// so `go test -bench=. -benchmem` regenerates every artifact's shape:
//
//	BenchmarkTable1/*      — Table I rows (acc% per method × dataset)
//	BenchmarkFig1          — Fig. 1 block scores per probed layer
//	BenchmarkCommCost      — C1 cluster-formation traffic
//	BenchmarkNewcomer      — F2 newcomer routing
//	BenchmarkAlphaSweep    — S1 heterogeneity sweep
//	BenchmarkScale         — S2 clustering scalability
//	BenchmarkLayerAblation — A1 per-layer cluster recovery
//	BenchmarkLinkage       — A2 linkage ablation
//
// Absolute wall-clock numbers are simulator-dependent; the custom metrics
// are the reproduction targets (see EXPERIMENTS.md for paper-vs-measured).
package fedclust_test

import (
	"fmt"
	"testing"

	"fedclust/internal/experiments"
)

// benchWorkload is the benchmark-scale Table-I workload: small enough for
// one iteration per second-ish, large enough to preserve orderings.
func benchWorkload(dataset string) experiments.Workload {
	w := experiments.QuickWorkload(dataset)
	w.Clients = 8
	w.Rounds = 4
	w.TrainPerClass = 80
	w.TestPerClass = 30
	w.IFCAK = 3
	return w
}

func BenchmarkTable1(b *testing.B) {
	for _, ds := range experiments.DatasetNames {
		for _, m := range experiments.MethodNames {
			b.Run(fmt.Sprintf("%s/%s", ds, m), func(b *testing.B) {
				w := benchWorkload(ds)
				var acc float64
				for i := 0; i < b.N; i++ {
					env := experiments.BuildEnv(w, 1)
					res := experiments.NewTrainer(m, w).Run(env)
					acc = res.FinalAcc
				}
				b.ReportMetric(100*acc, "acc%")
			})
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	opts := experiments.DefaultFig1Options()
	opts.ClientsPerGroup = 3
	opts.TrainPerClass = 30
	opts.Epochs = 2
	var res *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res = experiments.RunFig1(opts)
	}
	first := res.Layers[0]
	last := res.Layers[len(res.Layers)-1]
	b.ReportMetric(first.BlockScore, "layer1_block")
	b.ReportMetric(last.BlockScore, "layer16_block")
	b.ReportMetric(last.ARI, "layer16_ARI")
}

func BenchmarkCommCost(b *testing.B) {
	opts := experiments.DefaultCommOptions()
	opts.Quick = true
	opts.Rounds = 4
	opts.ClientsPerGroup = 3
	var res *experiments.CommResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunComm(opts)
	}
	for _, row := range res.Rows {
		if row.Method == "FedClust" {
			b.ReportMetric(float64(row.FormationUpBytes), "fedclust_form_B")
			b.ReportMetric(float64(row.FormationRound), "fedclust_form_round")
		}
		if row.Method == "CFL" {
			b.ReportMetric(float64(row.FormationUpBytes), "cfl_form_B")
		}
	}
}

func BenchmarkNewcomer(b *testing.B) {
	opts := experiments.DefaultNewcomerOptions()
	opts.Newcomers = 4
	var res *experiments.NewcomerResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunNewcomer(opts)
	}
	b.ReportMetric(float64(res.Routed)/float64(res.Total), "routed_frac")
	b.ReportMetric(100*res.ServedAcc, "served_acc%")
}

func BenchmarkAlphaSweep(b *testing.B) {
	opts := experiments.AlphaSweepOptions{
		Dataset: "fmnist",
		Alphas:  []float64{0.1, 10},
		Methods: []string{"FedAvg", "FedClust"},
		Seed:    1,
		Quick:   true,
	}
	var res *experiments.AlphaSweepResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunAlphaSweep(opts)
	}
	gapSkew := res.Acc["FedClust"][0.1] - res.Acc["FedAvg"][0.1]
	gapIID := res.Acc["FedClust"][10] - res.Acc["FedAvg"][10]
	b.ReportMetric(100*gapSkew, "gap_skew_pts")
	b.ReportMetric(100*gapIID, "gap_iid_pts")
}

func BenchmarkScale(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			opts := experiments.ScaleOptions{Dataset: "fmnist", ClientSizes: []int{n}, Seed: 1}
			var res *experiments.ScaleResult
			for i := 0; i < b.N; i++ {
				res = experiments.RunScale(opts)
			}
			row := res.Rows[0]
			b.ReportMetric(float64(row.ClusteringTime.Milliseconds()), "cluster_ms")
			b.ReportMetric(row.ARI, "ARI")
		})
	}
}

func BenchmarkLayerAblation(b *testing.B) {
	opts := experiments.DefaultLayerAblationOptions()
	var res *experiments.LayerAblationResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunLayerAblation(opts)
	}
	b.ReportMetric(res.Rows[0].ARI, "layer1_ARI")
	b.ReportMetric(res.Rows[len(res.Rows)-1].ARI, "final_ARI")
}

func BenchmarkLinkage(b *testing.B) {
	opts := experiments.DefaultLinkageAblationOptions()
	var res *experiments.LinkageAblationResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunLinkageAblation(opts)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.ARI, row.Linkage.String()+"_ARI")
	}
}

func BenchmarkCompression(b *testing.B) {
	opts := experiments.DefaultCompressionOptions()
	opts.Methods = []string{"FedAvg"}
	var res *experiments.CompressionResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunCompression(opts)
	}
	for _, row := range res.Rows {
		b.ReportMetric(row.AccPct, row.Codec.String()+"_acc")
		b.ReportMetric(float64(row.UpBytes), row.Codec.String()+"_upB")
	}
}

func BenchmarkSelector(b *testing.B) {
	opts := experiments.DefaultSelectorAblationOptions()
	var res *experiments.SelectorAblationResult
	for i := 0; i < b.N; i++ {
		res = experiments.RunSelectorAblation(opts)
	}
	for _, row := range res.Rows {
		if row.Rule == "silhouette (default)" {
			b.ReportMetric(row.ARI, "default_ARI")
			b.ReportMetric(float64(row.K), "default_K")
		}
	}
}

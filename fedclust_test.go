package fedclust_test

import (
	"testing"

	"fedclust"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/nn"
	"fedclust/internal/rng"
)

// TestFacadeEndToEnd exercises the public facade exactly as the package
// documentation advertises: build an Env, run FedClust via fedclust.New,
// inspect the Result and the newcomer API.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := data.SynthFMNIST(3)
	cfg.TrainPerClass, cfg.TestPerClass = 40, 16
	train, test := data.Generate(cfg)
	clients, _ := fl.BuildGroupClients(train, test,
		[][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, []int{3, 3}, rng.New(3))

	env := &fedclust.Env{
		Clients: clients,
		Factory: func(r *rng.Rng) *nn.Sequential { return nn.MLP(r, train.Dim(), 24, 10) },
		Rounds:  3,
		Local:   fedclust.LocalConfig{Epochs: 1, BatchSize: 16, LR: 0.05},
		Seed:    3,
	}

	trainer := fedclust.New(fedclust.Config{})
	var _ fedclust.Trainer = trainer // facade trainer satisfies the interface
	res := trainer.Run(env)
	if res.Method != "FedClust" {
		t.Fatalf("method = %q", res.Method)
	}
	if res.FinalAcc <= 0.2 {
		t.Fatalf("facade run accuracy %v", res.FinalAcc)
	}
	if trainer.State == nil || trainer.State.K < 1 {
		t.Fatal("facade run left no fitted state")
	}

	// Baselines are reachable through the facade too.
	avg := fedclust.FedAvg{}.Run(env)
	if avg.Method != "FedAvg" {
		t.Fatalf("baseline method = %q", avg.Method)
	}

	// Newcomer API through the facade state.
	m := env.NewModel()
	fl.LocalUpdate(m, clients[0].Train, env.Local, rng.New(9))
	feature := trainer.State.NewcomerFeature(m)
	c := trainer.State.AssignNewcomer(feature)
	if c < 0 || c >= trainer.State.K {
		t.Fatalf("newcomer assigned to invalid cluster %d", c)
	}
	// A model trained on client 0's data must be routed to client 0's
	// own cluster.
	if want := trainer.State.Labels[0]; c != want {
		t.Fatalf("newcomer with client-0 data routed to %d, want %d", c, want)
	}
}

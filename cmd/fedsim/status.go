package main

// fedsim status — query a running coordinator's HTTP control plane.

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// runStatus fetches /status from a coordinator's control plane (started
// with `serve -control <addr>`) and prints the JSON snapshot; with
// -trigger-checkpoint it first POSTs /checkpoint to arm the on-demand
// snapshot trigger.
func runStatus(addr string, trigger bool) {
	base := "http://" + displayAddr(addr)
	client := &http.Client{Timeout: 5 * time.Second}
	if trigger {
		resp, err := client.Post(base+"/checkpoint", "application/json", strings.NewReader(""))
		if err != nil {
			fatalf("triggering checkpoint: %v", err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatalf("triggering checkpoint: coordinator said %s", resp.Status)
		}
		fmt.Println("checkpoint trigger armed — next completed round snapshots")
	}
	resp, err := client.Get(base + "/status")
	if err != nil {
		fatalf("querying %s: %v", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("reading status: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("coordinator said %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Print(string(body))
	if !strings.HasSuffix(string(body), "\n") {
		fmt.Println()
	}
}

// Command fedsim regenerates every experimental artifact of the FedClust
// reproduction from the command line.
//
// Usage:
//
//	fedsim <experiment> [flags]
//
// Experiments:
//
//	table1           Table I — accuracy of 6 methods × 3 datasets, Dir(0.1)
//	fig1             Fig. 1 — per-layer weight-distance matrices (VGG-16)
//	comm             C1 — communication cost of cluster formation
//	newcomer         F2 — dynamic newcomer incorporation (paper step ⑥)
//	sweep-alpha      S1 — accuracy across Dirichlet heterogeneity levels
//	scale            S2 — clustering/round time vs client count
//	ablation-layer   A1 — cluster recovery per weight layer
//	ablation-linkage A2 — FedClust under each HC linkage
//	stragglers       H1 — system heterogeneity: stragglers, dropouts, staleness
//	hostile          R1 — byzantine clients, churn, drift × robust aggregation
//	serve            networked federation: run rounds as the coordinator
//	join             networked federation: serve local training as a node
//	status           query a running coordinator's HTTP control plane
//	tail             render a JSONL round journal (optionally following it)
//
// Common flags:
//
//	-quick        reduced workload (fewer clients/samples/rounds)
//	-seed N       root seed (default 1)
//	-seeds a,b,c  seed list for table1 (default 1,2,3)
//	-csv path     also write results as CSV
//	-codec c      uplink codec: float64, float32, quant8, topk, topk-quant8
//	-topk-frac F  sparse codecs' kept coordinate fraction (0 = 1% default)
//	-journal path append a JSONL round journal (one event per round) to path
//
// Scenario flags (stragglers):
//
//	-scenario         toggle the heterogeneity layer (default true)
//	-deadline D       virtual round deadline in nominal local-pass units
//	-straggler-frac F fraction of clients drawn into the slow cohort
//	-dropouts a,b,c   per-round dropout rates swept
//
// Hostile-world flags (hostile):
//
//	-attack K          byzantine behavior: none, label-noise, sign-flip, garbage, mixed
//	-byzantine-frac l  comma-separated attacker-cohort fractions swept
//	-churn F           fraction of clients that join or leave mid-training
//	-drift-frac F      fraction of clients whose distribution drifts
//	-drift-round N     round at which drifted clients switch distribution
//	-aggregator l      comma-separated server strategies: mean, trimmed, median, krum
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fedclust/internal/experiments"
	"fedclust/internal/fl"
	"fedclust/internal/obs"
	"fedclust/internal/scenario"
	"fedclust/internal/wire"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] == "-h" || os.Args[1] == "--help" || os.Args[1] == "help" {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced workload for fast runs")
	seed := fs.Uint64("seed", 1, "root seed")
	seedList := fs.String("seeds", "1,2,3", "comma-separated seeds (table1)")
	csvPath := fs.String("csv", "", "also write results to this CSV file")
	datasets := fs.String("datasets", "cifar10,fmnist,svhn", "datasets (table1)")
	methodsFlag := fs.String("methods", strings.Join(experiments.MethodNames, ","), "methods (table1)")
	rounds := fs.Int("rounds", 0, "override training rounds where applicable")
	workers := fs.Int("workers", 0, "cap simulator parallelism (sets GOMAXPROCS; default all cores)")
	dtypeFlag := fs.String("dtype", "float64", "numeric compute path: float64 (golden reference) or float32 (SIMD kernels, ~2x+ local training)")
	scenarioOn := fs.Bool("scenario", true, "enable the system-heterogeneity scenario layer (stragglers)")
	deadline := fs.Float64("deadline", 1, "virtual round deadline in nominal local-pass units (stragglers)")
	stragglerFrac := fs.Float64("straggler-frac", 0.3, "fraction of clients in the slow cohort (stragglers)")
	dropouts := fs.String("dropouts", "0,0.1,0.3,0.5", "comma-separated per-round dropout rates (stragglers)")
	attackFlag := fs.String("attack", "sign-flip", "byzantine behavior: none, label-noise, sign-flip, garbage, mixed (hostile)")
	alphaFlag := fs.Float64("alpha", 0, "Dirichlet concentration override for the hostile population, 0 = experiment default Dir(1) (hostile)")
	byzFracs := fs.String("byzantine-frac", "0,0.1,0.2,0.3", "comma-separated attacker-cohort fractions swept (hostile)")
	churnFrac := fs.Float64("churn", 0, "fraction of clients that join or leave mid-training (hostile)")
	driftFrac := fs.Float64("drift-frac", 0, "fraction of clients whose distribution drifts (hostile)")
	driftRound := fs.Int("drift-round", 0, "round at which drifted clients switch distribution (hostile)")
	aggregators := fs.String("aggregator", "mean,trimmed,median,multi-krum", "comma-separated server aggregation strategies swept (hostile)")
	addr := fs.String("addr", ":7171", "coordinator address (serve: listen; join: dial)")
	nodesN := fs.Int("nodes", 1, "node processes to wait for before training (serve)")
	codec := fs.String("codec", "float64", "uplink parameter codec: float64, float32, quant8, topk, topk-quant8")
	topkFrac := fs.Float64("topk-frac", 0, "sparse codecs' kept coordinate fraction in (0,1] (0 = the 1% default)")
	timeoutSec := fs.Float64("timeout", 60, "per-request transport deadline in seconds, 0 = none (serve)")
	nodeName := fs.String("name", "", "node name announced to the coordinator (join; default host-pid)")
	ckptPath := fs.String("checkpoint", "", "write checkpoints to this file (serve)")
	ckptEvery := fs.Int("checkpoint-every", 0, "emit a checkpoint every N completed rounds (serve; 0 = only on demand)")
	resumePath := fs.String("resume", "", "resume the run from this checkpoint file (serve)")
	controlAddr := fs.String("control", "", "HTTP control-plane listen address, e.g. :7172 (serve; empty = disabled)")
	rejoinSec := fs.Float64("rejoin", 0, "seconds to keep re-dialing a lost coordinator (join; 0 = exit on disconnect)")
	triggerCkpt := fs.Bool("trigger-checkpoint", false, "also arm an on-demand checkpoint (status)")
	journalPath := fs.String("journal", "", "append a JSONL round journal to this file (runs); journal to read (tail)")
	tailLast := fs.Int("last", 10, "round events to show (tail; 0 = all)")
	tailFollow := fs.Bool("follow", false, "keep watching the journal for new events (tail)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	// Reject nonsense numeric flags up front, in fl.LocalConfig.Check
	// style: 0 stays each flag's "use the default" sentinel, but negative
	// values were previously accepted silently (-workers -4 left
	// GOMAXPROCS untouched; -timeout -1 disabled the deadline) and now
	// fail loudly instead of meaning something by accident.
	if err := checkNumericFlags(*workers, *rounds, *timeoutSec, *ckptEvery, *rejoinSec); err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(2)
	}
	if *workers > 0 {
		// Caps both the client executor width (Env.WorkerCount) and the
		// tensor kernels' row-block width — everything runs on the shared
		// work-sharing pool in internal/sched.
		runtime.GOMAXPROCS(*workers)
	}
	dtype, err := fl.ParseDType(*dtypeFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(2)
	}
	// One knob for every environment the process builds: in-process
	// experiments read it from BuildEnv; serve ships it in the spec so
	// joining nodes run the same path.
	experiments.DefaultDType = dtype
	// Same pattern for the uplink codec: -codec topk -topk-frac 0.01 runs
	// any in-process experiment sparsified, and serve ships the selection
	// in the spec so nodes hold matching error-feedback state.
	wcodec, err := wire.ParseCodec(*codec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(2)
	}
	if *topkFrac < 0 || *topkFrac > 1 || math.IsNaN(*topkFrac) {
		fmt.Fprintf(os.Stderr, "fedsim: invalid -topk-frac %v: must be in (0,1] (0 selects the default)\n", *topkFrac)
		os.Exit(2)
	}
	experiments.DefaultCodec = wcodec
	experiments.DefaultTopKFrac = *topkFrac
	if *tailLast < 0 {
		fmt.Fprintf(os.Stderr, "fedsim: invalid -last %d: must be non-negative (0 shows every round)\n", *tailLast)
		os.Exit(2)
	}
	// -journal on an in-process experiment attaches a round journal to
	// every environment the process builds (experiments.DefaultObserver,
	// the DefaultDType pattern). serve wires its own journal so the event
	// classification knows the run's local-epoch setting; tail reads one.
	var journal *obs.Journal
	switch cmd {
	case "serve", "join", "status", "tail":
	default:
		if *journalPath != "" {
			journal = openJournal(*journalPath, 0)
			experiments.DefaultObserver = journal
		}
	}

	start := time.Now()
	switch cmd {
	case "table1":
		runTable1(*quick, parseSeeds(*seedList), splitList(*datasets), splitList(*methodsFlag), *csvPath)
	case "fig1":
		runFig1(*quick, *seed)
	case "comm":
		runComm(*quick, *seed, *rounds)
	case "newcomer":
		runNewcomer(*quick, *seed)
	case "sweep-alpha":
		runAlphaSweep(*quick, *seed)
	case "scale":
		runScale(*seed)
	case "ablation-layer":
		runLayerAblation(*quick, *seed)
	case "ablation-linkage":
		runLinkageAblation(*quick, *seed)
	case "ablation-selector":
		runSelectorAblation(*quick, *seed)
	case "ablation-compression":
		runCompressionAblation(*quick, *seed, *topkFrac, *csvPath)
	case "serve":
		// A bare `fedsim serve` runs FedAvg + FedClust; an explicit
		// -methods narrows or widens the distributed set.
		runServe(*quick, *seed, *rounds, *addr, *nodesN, *codec, *topkFrac, *timeoutSec,
			explicitMethods(fs, *methodsFlag), serveControl{
				CheckpointPath:  *ckptPath,
				CheckpointEvery: *ckptEvery,
				ResumePath:      *resumePath,
				ControlAddr:     *controlAddr,
				JournalPath:     *journalPath,
			})
	case "join":
		runJoin(*addr, *nodeName, *rejoinSec)
	case "status":
		// A status query is not a run: print the snapshot and nothing
		// else, so the JSON stays pipeable (fedsim status | jq).
		runStatus(*addr, *triggerCkpt)
		return
	case "tail":
		// Like status, tail is a query, not a run: render and exit so the
		// output stays pipeable.
		runTail(*journalPath, *tailLast, *tailFollow)
		return
	case "stragglers":
		// The stragglers default method set adds the staleness-aware
		// aggregators; an explicit -methods overrides it.
		runStragglers(*quick, *seed, *scenarioOn, *deadline, *stragglerFrac,
			parseFloats(*dropouts), explicitMethods(fs, *methodsFlag), *csvPath)
	case "hostile":
		runHostile(*quick, *seed, *attackFlag, *alphaFlag, parseFloats(*byzFracs), *churnFrac,
			*driftFrac, *driftRound, splitList(*aggregators), explicitMethods(fs, *methodsFlag), *csvPath)
	default:
		fmt.Fprintf(os.Stderr, "fedsim: unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if journal != nil {
		if err := journal.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: journal write failed: %v\n", err)
		}
		journal.Close() //nolint:errcheck
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Second))
}

// checkNumericFlags rejects out-of-range numeric flags with clear errors
// (0 remains each flag's "default" sentinel throughout).
func checkNumericFlags(workers, rounds int, timeoutSec float64, ckptEvery int, rejoinSec float64) error {
	if workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be positive (or 0 for all cores)", workers)
	}
	if rounds < 0 {
		return fmt.Errorf("invalid -rounds %d: must be positive (or 0 for the experiment default)", rounds)
	}
	if timeoutSec < 0 || math.IsNaN(timeoutSec) || math.IsInf(timeoutSec, 0) {
		return fmt.Errorf("invalid -timeout %v: must be non-negative seconds (0 disables the deadline)", timeoutSec)
	}
	if ckptEvery < 0 {
		return fmt.Errorf("invalid -checkpoint-every %d: must be positive rounds (or 0 for on-demand only)", ckptEvery)
	}
	if rejoinSec < 0 || math.IsNaN(rejoinSec) || math.IsInf(rejoinSec, 0) {
		return fmt.Errorf("invalid -rejoin %v: must be non-negative seconds (0 exits on disconnect)", rejoinSec)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `fedsim — FedClust reproduction harness

usage: fedsim <experiment> [flags]

experiments:
  table1           Table I: accuracy, 6 methods x 3 datasets, Dir(0.1)
  fig1             Fig. 1: per-layer weight-distance matrices (VGG-16)
  comm             C1: communication cost of cluster formation
  newcomer         F2: dynamic newcomer incorporation
  sweep-alpha      S1: accuracy across heterogeneity levels
  scale            S2: clustering/round time vs client count
  ablation-layer   A1: cluster recovery per weight layer
  ablation-linkage A2: FedClust under each HC linkage
  ablation-selector A3: automatic cluster-count rules
  ablation-compression A4: accuracy vs measured bytes per uplink codec
  stragglers       H1: system heterogeneity (stragglers, dropouts, staleness)
  hostile          R1: byzantine clients, churn, drift x robust aggregation
  serve            run federated rounds as a network coordinator
  join             serve local training as a node of a coordinator
  status           query a running coordinator's control plane
  tail             render a JSONL round journal (optionally following it)

flags: -quick, -seed N, -seeds a,b,c, -csv path, -datasets ..., -methods ..., -rounds N, -workers N, -dtype float64|float32
codec flags: -codec float64|float32|quant8|topk|topk-quant8, -topk-frac F (sparse kept fraction, 0 = 1% default)
scenario flags (stragglers): -scenario, -deadline D, -straggler-frac F, -dropouts a,b,c
hostile flags: -attack k, -byzantine-frac a,b,c, -churn F, -drift-frac F, -drift-round N, -aggregator a,b,c
transport flags (serve/join): -addr host:port, -nodes N, -codec c, -timeout s, -name id, -rejoin s
checkpoint flags (serve): -checkpoint path, -checkpoint-every N, -resume path, -control addr
status flags: -addr host:port (the -control address), -trigger-checkpoint
telemetry flags: -journal path (runs: append JSONL round events; tail: the journal to read), -last N, -follow`)
}

// explicitMethods returns the parsed -methods list only when the flag
// was set on the command line, so subcommands with their own default
// method sets can tell "defaulted" from "explicitly chosen".
func explicitMethods(fs *flag.FlagSet, methodsFlag string) []string {
	var out []string
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "methods" {
			out = splitList(methodsFlag)
		}
	})
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: bad rate %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func runStragglers(quick bool, seed uint64, scenarioOn bool, deadline, stragglerFrac float64,
	dropoutRates []float64, methodList []string, csvPath string) {
	fmt.Println("== H1: system heterogeneity — stragglers, dropouts, staleness ==")
	// Validate scenario settings up front: scenario.New panics on bad
	// config, and a mid-sweep stack trace after minutes of training is a
	// poor way to report a typo.
	for _, r := range dropoutRates {
		if r < 0 || r >= 1 {
			fmt.Fprintf(os.Stderr, "fedsim: dropout rate %v out of [0,1)\n", r)
			os.Exit(2)
		}
	}
	if stragglerFrac < 0 || stragglerFrac > 1 {
		fmt.Fprintf(os.Stderr, "fedsim: straggler fraction %v out of [0,1]\n", stragglerFrac)
		os.Exit(2)
	}
	if deadline <= 0 {
		fmt.Fprintf(os.Stderr, "fedsim: non-positive deadline %v\n", deadline)
		os.Exit(2)
	}
	opts := experiments.DefaultStragglerOptions()
	opts.Quick = quick
	opts.Seed = seed
	opts.Scenario = scenarioOn
	opts.Deadline = deadline
	opts.StragglerFrac = stragglerFrac
	if len(dropoutRates) > 0 {
		opts.DropoutRates = dropoutRates
	}
	if len(methodList) > 0 {
		opts.Methods = methodList
	}
	opts.Progress = os.Stdout
	res := experiments.RunStragglers(opts)
	fmt.Println()
	res.Render(os.Stdout)
	fmt.Println()
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		header, rows := res.CSV()
		if err := experiments.WriteCSV(f, header, rows); err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
}

func runHostile(quick bool, seed uint64, attackName string, alpha float64, byzFracs []float64,
	churn, driftFrac float64, driftRound int, aggList, methodList []string, csvPath string) {
	fmt.Println("== R1: hostile world — byzantine clients, churn, drift ==")
	attack, err := scenario.ParseAttack(attackName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(2)
	}
	if alpha < 0 {
		fmt.Fprintf(os.Stderr, "fedsim: negative Dirichlet concentration %v\n", alpha)
		os.Exit(2)
	}
	opts := experiments.DefaultHostileOptions()
	opts.Quick = quick
	opts.Seed = seed
	opts.Attack = attackName
	if alpha > 0 {
		opts.Alpha = alpha
	}
	if len(byzFracs) > 0 {
		opts.ByzantineFracs = byzFracs
	}
	opts.ChurnFrac, opts.DriftFrac, opts.DriftRound = churn, driftFrac, driftRound
	if len(aggList) > 0 {
		opts.Aggregators = aggList
	}
	if len(methodList) > 0 {
		opts.Methods = methodList
	}
	// Validate every swept scenario configuration through
	// scenario.Config.Check before training starts (checkNumericFlags
	// style): a typo'd fraction fails in milliseconds with a clear error,
	// not as a panic buried mid-sweep. The churn horizon mirrors what
	// RunHostile will use — the workload's round count.
	horizon := experiments.PaperWorkload(opts.Dataset).Rounds
	if quick {
		horizon = experiments.QuickWorkload(opts.Dataset).Rounds
	}
	for _, f := range opts.ByzantineFracs {
		cfg := scenario.Config{
			ByzantineFrac: f, Attack: attack,
			ChurnFrac: churn, ChurnHorizon: horizon,
			DriftFrac: driftFrac, DriftRound: driftRound,
		}
		if err := cfg.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(2)
		}
		for _, a := range opts.Aggregators {
			if _, err := fl.NewAggregator(a, f); err != nil {
				fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
				os.Exit(2)
			}
		}
	}
	opts.Progress = os.Stdout
	res := experiments.RunHostile(opts)
	fmt.Println()
	res.Render(os.Stdout)
	fmt.Println()
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		header, rows := res.CSV()
		if err := experiments.WriteCSV(f, header, rows); err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
}

func parseSeeds(s string) []uint64 {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: bad seed %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		out = []uint64{1}
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func runTable1(quick bool, seeds []uint64, datasets, methodNames []string, csvPath string) {
	fmt.Println("== Table I: test accuracy under Non-IID Dir(0.1) ==")
	opts := experiments.Table1Options{
		Datasets: datasets,
		Methods:  methodNames,
		Seeds:    seeds,
		Quick:    quick,
		Progress: os.Stdout,
	}
	res := experiments.RunTable1(opts)
	fmt.Println()
	res.Render(os.Stdout)
	fmt.Println()
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
	if csvPath != "" {
		writeTable1CSV(res, csvPath)
	}
}

func writeTable1CSV(res *experiments.Table1Result, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	header := []string{"method", "dataset", "mean_acc_pct", "std_acc_pct", "paper_mean_pct"}
	var rows [][]string
	for _, m := range res.Methods {
		for _, ds := range res.Datasets {
			c := res.Cell(m, ds)
			paper := ""
			if p, ok := experiments.PaperTable1[m][ds]; ok {
				paper = fmt.Sprintf("%.2f", p[0])
			}
			rows = append(rows, []string{m, ds,
				fmt.Sprintf("%.2f", c.Mean()), fmt.Sprintf("%.2f", c.Std()), paper})
		}
	}
	if err := experiments.WriteCSV(f, header, rows); err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

func runFig1(quick bool, seed uint64) {
	fmt.Println("== Fig. 1: distance matrices from different layer weights ==")
	opts := experiments.DefaultFig1Options()
	opts.Seed = seed
	if quick {
		opts.ClientsPerGroup = 3
		opts.TrainPerClass = 40
		opts.Epochs = 2
	}
	res := experiments.RunFig1(opts)
	res.Render(os.Stdout)
	fmt.Println()
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
}

func runComm(quick bool, seed uint64, rounds int) {
	fmt.Println("== C1: communication cost of cluster formation ==")
	opts := experiments.DefaultCommOptions()
	opts.Quick = quick
	opts.Seed = seed
	if rounds > 0 {
		opts.Rounds = rounds
	}
	opts.Progress = os.Stdout
	res := experiments.RunComm(opts)
	fmt.Println()
	res.Render(os.Stdout)
	fmt.Println()
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
}

func runNewcomer(quick bool, seed uint64) {
	fmt.Println("== F2: dynamic newcomer incorporation (paper step ⑥) ==")
	opts := experiments.DefaultNewcomerOptions()
	opts.Quick = quick
	opts.Seed = seed
	opts.Progress = os.Stdout
	res := experiments.RunNewcomer(opts)
	fmt.Println()
	res.Render(os.Stdout)
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
}

func runAlphaSweep(quick bool, seed uint64) {
	fmt.Println("== S1: heterogeneity sweep (Dirichlet alpha) ==")
	opts := experiments.DefaultAlphaSweepOptions()
	opts.Quick = quick
	opts.Seed = seed
	opts.Progress = os.Stdout
	res := experiments.RunAlphaSweep(opts)
	fmt.Println()
	res.Render(os.Stdout)
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
}

func runScale(seed uint64) {
	fmt.Println("== S2: scalability of one-shot clustering ==")
	opts := experiments.DefaultScaleOptions()
	opts.Seed = seed
	opts.Progress = os.Stdout
	res := experiments.RunScale(opts)
	fmt.Println()
	res.Render(os.Stdout)
}

func runLayerAblation(quick bool, seed uint64) {
	fmt.Println("== A1: which layer's weights cluster best ==")
	opts := experiments.DefaultLayerAblationOptions()
	opts.Quick = quick
	opts.Seed = seed
	opts.Progress = os.Stdout
	res := experiments.RunLayerAblation(opts)
	fmt.Println()
	res.Render(os.Stdout)
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
}

func runLinkageAblation(quick bool, seed uint64) {
	fmt.Println("== A2: FedClust under each HC linkage ==")
	opts := experiments.DefaultLinkageAblationOptions()
	opts.Quick = quick
	opts.Seed = seed
	opts.Progress = os.Stdout
	res := experiments.RunLinkageAblation(opts)
	fmt.Println()
	res.Render(os.Stdout)
}

func runSelectorAblation(quick bool, seed uint64) {
	fmt.Println("== A3: automatic cluster-count rules ==")
	opts := experiments.DefaultSelectorAblationOptions()
	opts.Quick = quick
	opts.Seed = seed
	opts.Progress = os.Stdout
	res := experiments.RunSelectorAblation(opts)
	fmt.Println()
	res.Render(os.Stdout)
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
}

func runCompressionAblation(quick bool, seed uint64, topkFrac float64, csvPath string) {
	fmt.Println("== A4: accuracy-vs-measured-bytes frontier of the uplink codecs ==")
	opts := experiments.DefaultCompressionOptions()
	opts.Quick = quick
	opts.Seed = seed
	if topkFrac > 0 {
		opts.TopKFrac = topkFrac
	}
	opts.Progress = os.Stdout
	res := experiments.RunCompression(opts)
	fmt.Println()
	res.Render(os.Stdout)
	fmt.Println()
	for _, c := range res.ShapeChecks() {
		fmt.Println(c)
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		header, rows := res.CSV()
		if err := experiments.WriteCSV(f, header, rows); err != nil {
			fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
}

package main

// fedsim tail — render the JSONL round journal written by -journal as a
// human-readable round log, optionally following the file as a live run
// appends to it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"fedclust/internal/fl"
	"fedclust/internal/obs"
)

// openJournal opens (creating, appending) a journal sink at path. Shared
// by serve and the in-process experiments' -journal wiring.
func openJournal(path string, epochs int) *obs.Journal {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fatalf("opening -journal: %v", err)
	}
	return obs.NewJournal(f, epochs)
}

// runTail prints the last `last` round events of the journal at path
// (0 = every round, run boundaries included), then with -follow keeps
// polling the file and printing new events as the writer appends them.
func runTail(path string, last int, follow bool) {
	if path == "" {
		fatalf("tail needs -journal <path>")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	events, offset := parseJournalLines(data)
	if len(events) == 0 && !follow {
		fatalf("%s holds no journal events", path)
	}
	for _, ev := range tailWindow(events, last) {
		fmt.Println(formatEvent(ev))
	}
	if !follow {
		return
	}
	// Follow by polling: re-read from the last complete line. A torn
	// final line (the writer is mid-append) is retried next tick; a file
	// that shrank was truncated or rotated, so start over from the top.
	for {
		time.Sleep(500 * time.Millisecond)
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if int64(len(data)) < offset {
			offset = 0
		}
		fresh, consumed := parseJournalLines(data[offset:])
		offset += consumed
		for _, ev := range fresh {
			fmt.Println(formatEvent(ev))
		}
	}
}

// parseJournalLines decodes the complete lines of buf, returning the
// events and the byte count consumed (through the last newline). Torn or
// foreign lines are skipped, not fatal: tail must keep up with a live
// writer and with journals that outlive schema changes.
func parseJournalLines(buf []byte) ([]obs.Event, int64) {
	var out []obs.Event
	consumed := 0
	for {
		nl := bytes.IndexByte(buf[consumed:], '\n')
		if nl < 0 {
			break
		}
		line := buf[consumed : consumed+nl]
		consumed += nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		out = append(out, ev)
	}
	return out, int64(consumed)
}

// tailWindow trims events so at most `last` round events remain (0 keeps
// everything). Run boundaries inside the window stay.
func tailWindow(events []obs.Event, last int) []obs.Event {
	if last <= 0 {
		return events
	}
	rounds := 0
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Event == "round" {
			if rounds++; rounds == last {
				// Pull in an immediately preceding run_start so the first
				// shown round is attributed to its method.
				if i > 0 && events[i-1].Event == "run_start" {
					i--
				}
				return events[i:]
			}
		}
	}
	return events
}

// formatEvent renders one journal event as a log line.
func formatEvent(ev obs.Event) string {
	switch ev.Event {
	case "run_start":
		resumed := ""
		if ev.StartRound > 0 {
			resumed = fmt.Sprintf(" (resumed at round %d)", ev.StartRound)
		}
		return fmt.Sprintf("── %s: %d rounds × %d clients%s",
			ev.Method, ev.TotalRounds, ev.NClients, resumed)
	case "round":
		var b strings.Builder
		fmt.Fprintf(&b, "round %3d  %d/%d reported", ev.Round, ev.Reported, ev.Invited)
		if ev.Partial+ev.Late+ev.Offline+ev.Failed > 0 {
			fmt.Fprintf(&b, " (on-time %d, partial %d, late %d, offline %d, failed %d)",
				ev.OnTime, ev.Partial, ev.Late, ev.Offline, ev.Failed)
		}
		if ev.Masked+ev.Suspects > 0 {
			fmt.Fprintf(&b, "  defense masked %d suspects %d", ev.Masked, ev.Suspects)
		}
		fmt.Fprintf(&b, "  up %s (+%s)", fl.FormatBytes(ev.UpBytes), fl.FormatBytes(ev.UpDelta))
		fmt.Fprintf(&b, "  local %v / round %v", phaseDur(ev.Phases.LocalNS), phaseDur(ev.Phases.TotalNS))
		if ev.EvalRound >= 0 {
			fmt.Fprintf(&b, "  eval acc %.2f%% loss %.4f", 100*ev.MeanAcc, ev.MeanLoss)
		}
		if ev.Checkpoint {
			b.WriteString("  [checkpoint]")
		}
		return b.String()
	case "run_end":
		if ev.Aborted {
			return fmt.Sprintf("── run aborted after %d completed round(s)", ev.Completed)
		}
		return fmt.Sprintf("── run complete: %d rounds", ev.Completed)
	default:
		return fmt.Sprintf("── %s event", ev.Event)
	}
}

// phaseDur renders a nanosecond phase duration at a precision fitting
// its magnitude (quick rounds are sub-millisecond; real ones seconds).
func phaseDur(ns int64) time.Duration {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}

package main

// fedsim serve / fedsim join — the networked federation entry points.
//
// The coordinator (`serve`) owns the round schedule: it listens, waits
// for N nodes, ships each the environment spec plus a contiguous client
// range, and then runs the selected methods with every assigned client's
// local pass executing on its node. Nodes (`join`) dial in, rebuild the
// identical environment replica from the spec, and serve train requests
// until the coordinator says goodbye. Communication stats on the
// coordinator are measured off the sockets, not estimated.

import (
	"fmt"
	"os"
	"strings"
	"time"

	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

// distSpec is the distributed walkthrough workload: label-grouped
// synthetic clients on an MLP — small enough that a laptop coordinator
// plus a few localhost nodes finish in seconds, structured enough (two
// or four label groups) that FedClust's clustering has something to
// find.
func distSpec(quick bool, seed uint64, rounds int) *transport.Spec {
	s := &transport.Spec{
		Dataset: data.SynthConfig{
			Name: "dist8", C: 1, H: 16, W: 16, Classes: 8,
			TrainPerClass: 100, TestPerClass: 30,
			ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
		},
		Groups:    [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}},
		PerGroup:  []int{5, 5, 5, 5},
		Hidden:    []int{64},
		Seed:      seed,
		Rounds:    20,
		EvalEvery: 5,
		Local:     fl.LocalConfig{Epochs: 2, BatchSize: 32, LR: 0.1, Momentum: 0.9},
	}
	if quick {
		s.Dataset.H, s.Dataset.W, s.Dataset.Classes = 8, 8, 4
		s.Dataset.TrainPerClass, s.Dataset.TestPerClass = 40, 16
		s.Groups = [][]int{{0, 1}, {2, 3}}
		s.PerGroup = []int{3, 3}
		s.Hidden = []int{20}
		s.Rounds = 6
		s.EvalEvery = 2
		s.Local.BatchSize = 16
	}
	if rounds > 0 {
		s.Rounds = rounds
	}
	return s
}

// parseCodec maps the -codec flag to a wire codec.
func parseCodec(s string) (wire.Codec, error) {
	switch strings.ToLower(s) {
	case "", "float64":
		return wire.Float64, nil
	case "float32":
		return wire.Float32, nil
	case "quant8":
		return wire.Quant8, nil
	default:
		return 0, fmt.Errorf("unknown codec %q (float64, float32, quant8)", s)
	}
}

// distTrainer maps a method name to a trainer whose local passes route
// through the transport (methods driving engine.DefaultLocal).
func distTrainer(name string) (fl.Trainer, error) {
	switch strings.ToLower(name) {
	case "fedavg":
		return methods.FedAvg{}, nil
	case "fedprox":
		return methods.FedProx{Mu: 0.1}, nil
	case "cfl":
		return methods.CFL{}, nil
	case "fedclust":
		return &core.FedClust{}, nil
	default:
		return nil, fmt.Errorf("method %q is not transport-routable (use fedavg, fedprox, cfl, fedclust)", name)
	}
}

// runServe is the coordinator: wait for nodes, run the methods, report.
func runServe(quick bool, seed uint64, rounds int, addr string, nNodes int,
	codecStr string, timeoutSec float64, methodList []string) {
	codec, err := parseCodec(codecStr)
	if err != nil {
		fatalf("%v", err)
	}
	if nNodes < 1 {
		fatalf("need at least one node (-nodes)")
	}
	if len(methodList) == 0 {
		methodList = []string{"fedavg", "fedclust"}
	}
	trainers := make([]fl.Trainer, len(methodList))
	for i, m := range methodList {
		if trainers[i], err = distTrainer(m); err != nil {
			fatalf("%v", err)
		}
	}
	spec := distSpec(quick, seed, rounds)
	env, err := spec.Build()
	if err != nil {
		fatalf("%v", err)
	}
	specBytes, err := spec.Marshal()
	if err != nil {
		fatalf("%v", err)
	}
	coord, err := transport.Listen(addr)
	if err != nil {
		fatalf("%v", err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s — waiting for %d node(s):\n", coord.Addr(), nNodes)
	fmt.Printf("  fedsim join -addr %s\n", coord.Addr())
	timeout := time.Duration(timeoutSec * float64(time.Second))
	nodes, err := coord.AcceptNodes(nNodes, len(env.Clients), specBytes, codec, timeout)
	if err != nil {
		fatalf("%v", err)
	}
	for _, nd := range nodes {
		fmt.Printf("  node %q joined: clients [%d,%d)\n", nd.Name(), nd.Lo, nd.Hi)
	}
	fleet := transport.FleetOf(len(env.Clients), nodes)
	defer fleet.Close()
	env.Remote = fleet

	fmt.Printf("\n%d clients × %d rounds, codec %s, deadline %v\n\n",
		len(env.Clients), env.Rounds, codec, timeout)
	for _, tr := range trainers {
		start := time.Now()
		res := tr.Run(env)
		fmt.Printf("%-10s acc %.2f%%  wire: %s  (%v)\n",
			res.Method, 100*res.FinalAcc, res.Comm.String(), time.Since(start).Round(time.Millisecond))
	}
}

// runJoin is a node: dial, replicate the environment, serve until Bye.
func runJoin(addr, name string) {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	conn, lo, hi, specBytes, err := transport.Join(addr, name)
	if err != nil {
		fatalf("join %s: %v", addr, err)
	}
	spec, err := transport.ParseSpec(specBytes)
	if err != nil {
		fatalf("%v", err)
	}
	env, err := spec.Build()
	if err != nil {
		fatalf("building environment replica: %v", err)
	}
	fmt.Printf("joined %s as %q: %d clients replicated, serving [%d,%d)\n",
		addr, name, len(env.Clients), lo, hi)
	if err := transport.NewService(env).ServeConn(conn); err != nil {
		fatalf("serving: %v", err)
	}
	fmt.Println("coordinator said goodbye; exiting")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedsim: "+format+"\n", args...)
	os.Exit(1)
}

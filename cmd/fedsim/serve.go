package main

// fedsim serve / fedsim join — the networked federation entry points.
//
// The coordinator (`serve`) owns the round schedule: it listens, waits
// for N nodes, ships each the environment spec plus a contiguous client
// range, and then runs the selected methods with every assigned client's
// local pass executing on its node. Nodes (`join`) dial in, rebuild the
// identical environment replica from the spec, and serve train requests
// until the coordinator says goodbye. Communication stats on the
// coordinator are measured off the sockets, not estimated.

import (
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"fedclust/internal/control"
	"fedclust/internal/core"
	"fedclust/internal/data"
	"fedclust/internal/experiments"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
	"fedclust/internal/transport"
	"fedclust/internal/wire"
)

// distSpec is the distributed walkthrough workload: label-grouped
// synthetic clients on an MLP — small enough that a laptop coordinator
// plus a few localhost nodes finish in seconds, structured enough (two
// or four label groups) that FedClust's clustering has something to
// find.
func distSpec(quick bool, seed uint64, rounds int) *transport.Spec {
	s := &transport.Spec{
		Dataset: data.SynthConfig{
			Name: "dist8", C: 1, H: 16, W: 16, Classes: 8,
			TrainPerClass: 100, TestPerClass: 30,
			ClassSep: 0.85, Noise: 1.0, SharedBG: 0.3, Smooth: 1, Seed: seed,
		},
		Groups:    [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}},
		PerGroup:  []int{5, 5, 5, 5},
		Hidden:    []int{64},
		Seed:      seed,
		Rounds:    20,
		EvalEvery: 5,
		Local:     fl.LocalConfig{Epochs: 2, BatchSize: 32, LR: 0.1, Momentum: 0.9},
		DType:     experiments.DefaultDType.String(),
	}
	if quick {
		s.Dataset.H, s.Dataset.W, s.Dataset.Classes = 8, 8, 4
		s.Dataset.TrainPerClass, s.Dataset.TestPerClass = 40, 16
		s.Groups = [][]int{{0, 1}, {2, 3}}
		s.PerGroup = []int{3, 3}
		s.Hidden = []int{20}
		s.Rounds = 6
		s.EvalEvery = 2
		s.Local.BatchSize = 16
	}
	if rounds > 0 {
		s.Rounds = rounds
	}
	return s
}

// distTrainer maps a method name to a trainer whose local passes route
// through the transport (methods driving engine.DefaultLocal).
func distTrainer(name string) (fl.Trainer, error) {
	switch strings.ToLower(name) {
	case "fedavg":
		return methods.FedAvg{}, nil
	case "fedprox":
		return methods.FedProx{Mu: 0.1}, nil
	case "cfl":
		return methods.CFL{}, nil
	case "fedclust":
		return &core.FedClust{}, nil
	default:
		return nil, fmt.Errorf("method %q is not transport-routable (use fedavg, fedprox, cfl, fedclust)", name)
	}
}

// serveControl bundles the coordinator's checkpoint/control-plane flags.
type serveControl struct {
	CheckpointPath  string
	CheckpointEvery int
	ResumePath      string
	ControlAddr     string
	JournalPath     string
}

// runServe is the coordinator: wait for nodes, run the methods, report.
// With checkpointing enabled it persists snapshots to ctl.CheckpointPath
// and, given -resume, fast-forwards the method list to the checkpointed
// method and continues it mid-schedule; with a control address it serves
// live progress over HTTP while the rounds run.
func runServe(quick bool, seed uint64, rounds int, addr string, nNodes int,
	codecStr string, topkFrac float64, timeoutSec float64, methodList []string, ctl serveControl) {
	codec, err := wire.ParseCodec(codecStr)
	if err != nil {
		fatalf("%v", err)
	}
	if nNodes < 1 {
		fatalf("need at least one node (-nodes)")
	}
	if len(methodList) == 0 {
		methodList = []string{"fedavg", "fedclust"}
	}
	trainers := make([]fl.Trainer, len(methodList))
	for i, m := range methodList {
		if trainers[i], err = distTrainer(m); err != nil {
			fatalf("%v", err)
		}
	}
	spec := distSpec(quick, seed, rounds)
	// The codec selection rides the spec so each node rebuilds the same
	// uplink path — under sparse codecs a node owns the error-feedback
	// residuals of exactly the clients it trains.
	spec.Codec = codec.String()
	spec.TopKFrac = topkFrac
	env, err := spec.Build()
	if err != nil {
		fatalf("%v", err)
	}
	specBytes, err := spec.Marshal()
	if err != nil {
		fatalf("%v", err)
	}
	specHash := transport.SpecHash(specBytes)

	// A resume checkpoint must belong to this exact spec (the hash pins
	// dataset, population, schedule, codec-independent run identity) and
	// to one of the methods on the list; later trainers in the list run
	// from scratch, earlier ones are already done and are skipped.
	var resumeCkpt *fl.Checkpoint
	firstTrainer := 0
	if ctl.ResumePath != "" {
		resumeCkpt, err = fl.ReadCheckpointFile(ctl.ResumePath)
		if err != nil {
			fatalf("reading -resume: %v", err)
		}
		if resumeCkpt.SpecHash != specHash {
			fatalf("-resume checkpoint was taken under a different run spec (hash %#x, this run %#x) — same flags required", resumeCkpt.SpecHash, specHash)
		}
		firstTrainer = -1
		for i, tr := range trainers {
			if tr.Name() == resumeCkpt.Method {
				firstTrainer = i
				break
			}
		}
		if firstTrainer < 0 {
			fatalf("-resume checkpoint holds %s state, not on the method list %v", resumeCkpt.Method, methodList)
		}
		if err := resumeCkpt.Matches(env, resumeCkpt.Method, 0); err != nil {
			fatalf("-resume: %v", err)
		}
		fmt.Printf("resuming %s from %s at round %d/%d\n",
			resumeCkpt.Method, ctl.ResumePath, resumeCkpt.Round, resumeCkpt.Rounds)
	}

	tracker := control.NewTracker(env.Local.Epochs)
	env.Observer = tracker
	if ctl.JournalPath != "" {
		// The journal rides alongside the tracker: same observations, one
		// consumer serving live HTTP, one leaving a trace on disk.
		journal := openJournal(ctl.JournalPath, env.Local.Epochs)
		env.Observer = fl.MultiObserver(tracker, journal)
		defer func() {
			if err := journal.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "fedsim: journal write failed: %v\n", err)
			}
			journal.Close() //nolint:errcheck
		}()
		fmt.Printf("journal → %s\n", ctl.JournalPath)
	}
	if ctl.ControlAddr != "" {
		srv, err := control.Serve(ctl.ControlAddr, tracker)
		if err != nil {
			fatalf("control plane: %v", err)
		}
		defer srv.Close()
		fmt.Printf("control plane on http://%s/status\n", displayAddr(srv.Addr()))
	}
	if ctl.CheckpointPath != "" || ctl.CheckpointEvery > 0 {
		path := ctl.CheckpointPath
		if path == "" {
			fatalf("-checkpoint-every needs -checkpoint <path>")
		}
		env.Ckpt = &fl.CheckpointPlan{
			Every:    ctl.CheckpointEvery,
			Trigger:  tracker.TakeTrigger,
			SpecHash: specHash,
			Sink: func(c *fl.Checkpoint) {
				if err := c.WriteFile(path); err != nil {
					fmt.Fprintf(os.Stderr, "fedsim: checkpoint write failed: %v\n", err)
					return
				}
				fmt.Printf("  checkpoint: %s after round %d/%d → %s\n", c.Method, c.Round, c.Rounds, path)
			},
		}
	}

	coord, err := transport.Listen(addr)
	if err != nil {
		fatalf("%v", err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s — waiting for %d node(s):\n", coord.Addr(), nNodes)
	fmt.Printf("  fedsim join -addr %s\n", coord.Addr())
	timeout := time.Duration(timeoutSec * float64(time.Second))
	nodes, err := coord.AcceptNodes(nNodes, len(env.Clients), specBytes, codec, timeout)
	if err != nil {
		fatalf("%v", err)
	}
	for _, nd := range nodes {
		fmt.Printf("  node %q joined: clients [%d,%d)\n", nd.Name(), nd.Lo, nd.Hi)
	}
	fleet := transport.FleetOf(len(env.Clients), nodes)
	defer fleet.Close()
	env.Remote = fleet

	fmt.Printf("\n%d clients × %d rounds, codec %s, deadline %v\n\n",
		len(env.Clients), env.Rounds, codec, timeout)
	for _, tr := range trainers[firstTrainer:] {
		if env.Ckpt != nil {
			env.Ckpt.Resume = nil
			if resumeCkpt != nil && tr.Name() == resumeCkpt.Method {
				env.Ckpt.Resume = resumeCkpt
			}
		} else if resumeCkpt != nil && tr.Name() == resumeCkpt.Method {
			// Resuming without -checkpoint: attach a sink-less plan just
			// to carry the resume state into the engine.
			env.Ckpt = &fl.CheckpointPlan{Resume: resumeCkpt, SpecHash: specHash}
			defer func() { env.Ckpt = nil }()
		}
		start := time.Now()
		res := tr.Run(env)
		fmt.Printf("%-10s acc %.2f%%  wire: %s  (%v)\n",
			res.Method, 100*res.FinalAcc, res.Comm.String(), time.Since(start).Round(time.Millisecond))
	}
}

// displayAddr turns a bound listen address into something dialable from
// the local machine (":7172" → "127.0.0.1:7172").
func displayAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "127.0.0.1" + addr
	}
	if host, port, err := net.SplitHostPort(addr); err == nil && (host == "0.0.0.0" || host == "::" || host == "") {
		return net.JoinHostPort("127.0.0.1", port)
	}
	return addr
}

// runJoin is a node: dial, replicate the environment, serve until Bye.
// With a rejoin window, a lost coordinator (crash, restart-from-
// checkpoint) is re-dialed until the window expires; the spec hash
// guarantees the node only reconnects to the same run.
func runJoin(addr, name string, rejoinSec float64) {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	window := time.Duration(rejoinSec * float64(time.Second))
	err := transport.ServeLoop(addr, name, window, time.Second,
		func(lo, hi int, specBytes []byte) (*transport.Service, error) {
			spec, err := transport.ParseSpec(specBytes)
			if err != nil {
				return nil, err
			}
			env, err := spec.Build()
			if err != nil {
				return nil, fmt.Errorf("building environment replica: %w", err)
			}
			fmt.Printf("joined %s as %q: %d clients replicated, serving [%d,%d)\n",
				addr, name, len(env.Clients), lo, hi)
			return transport.NewService(env), nil
		})
	if err != nil {
		fatalf("serving: %v", err)
	}
	fmt.Println("coordinator said goodbye; exiting")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedsim: "+format+"\n", args...)
	os.Exit(1)
}

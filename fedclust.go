// Package fedclust is the public facade of the FedClust reproduction: a
// pure-Go clustered federated learning library implementing
//
//	FedClust: Optimizing Federated Learning on Non-IID Data through
//	Weight-Driven Client Clustering (Islam et al., IPDPSW 2024)
//
// together with every substrate it needs (a neural-network training stack,
// synthetic non-IID workloads, hierarchical clustering) and the baselines
// it is evaluated against (FedAvg, FedProx, CFL, IFCA, PACFL).
//
// The facade re-exports the types a downstream user needs so the
// implementation can stay organized under internal/:
//
//	env := &fedclust.Env{ Clients: ..., Factory: ..., Rounds: 10,
//	                      Local: fedclust.LocalConfig{...}, Seed: 1 }
//	trainer := fedclust.New(fedclust.Config{})
//	result  := trainer.Run(env)
//
// See examples/quickstart for a complete program and DESIGN.md for the
// system inventory.
package fedclust

import (
	"fedclust/internal/core"
	"fedclust/internal/fl"
	"fedclust/internal/methods"
)

// Core algorithm (the paper's contribution).
type (
	// FedClust is the weight-driven one-shot clustering trainer.
	FedClust = core.FedClust
	// Config tunes FedClust (zero value = paper defaults).
	Config = core.Config
	// ClusterState is the fitted server-side clustering, including the
	// newcomer-incorporation API (paper step ⑥).
	ClusterState = core.ClusterState
)

// Federated substrate.
type (
	// Env is the federated environment every trainer runs on.
	Env = fl.Env
	// Client is one simulated device with local train/test data.
	Client = fl.Client
	// LocalConfig controls client-side local training.
	LocalConfig = fl.LocalConfig
	// Trainer is the interface all methods implement.
	Trainer = fl.Trainer
	// Result is a completed run: accuracy, history, communication,
	// clusters.
	Result = fl.Result
)

// Baselines evaluated in the paper's Table I.
type (
	// FedAvg is the classic single-global-model baseline.
	FedAvg = methods.FedAvg
	// FedProx adds a proximal term to local objectives.
	FedProx = methods.FedProx
	// CFL is Sattler et al.'s iterative bi-partitioning method.
	CFL = methods.CFL
	// IFCA is Ghosh et al.'s K-model broadcast method.
	IFCA = methods.IFCA
	// PACFL is Vahidian et al.'s principal-angle data-subspace method.
	PACFL = methods.PACFL
)

// New returns a FedClust trainer with the given configuration. The zero
// Config reproduces the paper's defaults: cluster on the final-layer
// weight update, Euclidean proximity, average-linkage HC, automatic
// cluster count.
func New(cfg Config) *FedClust { return &FedClust{Cfg: cfg} }
